"""`DurableTCIndex` — the crash-safe facade over either engine.

A durable store is a directory::

    store.json                  # engine kind + numbering config (fixed)
    checkpoint-<seq:016d>.json  # atomic snapshots, newest wins
    wal-<first_seq:016d>.log    # op-log segments, one per checkpoint era

:meth:`DurableTCIndex.open` either creates that layout (empty engine,
checkpoint 0, log starting at sequence 1) or runs crash recovery over
whatever a dead process left behind (see
:mod:`repro.durability.recovery`) and resumes appending where the
durable history ends.  Every acknowledged mutation is journalled through
the engine's own :attr:`~repro.core.index.IntervalTCIndex.journal` hook,
so the log records exactly the Section 4 op stream the in-memory
algorithms executed — replay is deterministic by construction.

Durability knobs: ``fsync_every`` batches log fsyncs (1 = synchronous,
the default — a crash then loses nothing acknowledged; larger values
trade the tail batch for throughput, see ``bench_durability.py``);
``keep_checkpoints`` retains older snapshot generations so a corrupted
newest checkpoint degrades to a longer replay instead of data loss.

Node labels must be JSON-representable (strings, numbers, bools,
``None``) — the log and checkpoints are JSON documents.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.index import DEFAULT_GAP
from repro.durability import checkpoint as _checkpoint
from repro.durability import wal as _wal
from repro.durability.atomic import REAL_FS, RealFS, atomic_write_bytes
from repro.durability.recovery import RecoveryReport, recover
from repro.errors import CorruptFileError, PersistenceError, ReproError
from repro.graph.digraph import Node
from repro.obs.instrument import instrumented

CONFIG_NAME = "store.json"
CONFIG_KIND = "durable-store"
CONFIG_FORMAT_VERSION = 1
ENGINE_KINDS = ("interval", "hybrid")


def _read_config(directory: str) -> dict:
    path = os.path.join(directory, CONFIG_NAME)
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise CorruptFileError(path, f"unreadable: {error}") from error
    try:
        config = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptFileError(path, f"not valid JSON: {error}") from error
    if not isinstance(config, dict) or config.get("kind") != CONFIG_KIND:
        raise CorruptFileError(path, "not a durable-store config")
    if config.get("format_version") != CONFIG_FORMAT_VERSION:
        raise CorruptFileError(
            path,
            f"unsupported store version {config.get('format_version')!r}")
    if config.get("engine") not in ENGINE_KINDS:
        raise CorruptFileError(
            path, f"unknown engine kind {config.get('engine')!r}")
    return config


class DurableTCIndex:
    """Crash-safe transitive-closure store: WAL + checkpoints + recovery.

    Open (or create) with :meth:`open`; mutate with :meth:`add_node`,
    :meth:`add_arc`, :meth:`remove_arc`, :meth:`remove_node`,
    :meth:`renumber`, :meth:`merge_intervals`; query through the shared
    engine surface; snapshot with :meth:`checkpoint`; :meth:`close` when
    done (also a context manager).  :attr:`recovery_report` describes
    what the open had to repair.
    """

    def __init__(self) -> None:
        raise PersistenceError(
            "use DurableTCIndex.open(directory) — the constructor does "
            "not attach storage")

    @classmethod
    def open(cls, directory, *, engine: str = "interval",
             gap: int = DEFAULT_GAP, numbering: str = "integer",
             fsync_every: int = 1, keep_checkpoints: int = 2,
             backend: Optional[str] = None, create: bool = True,
             fs: Optional[RealFS] = None, metrics=None,
             tracer=None) -> "DurableTCIndex":
        """Open a store directory, creating or recovering as needed.

        ``engine``/``gap``/``numbering`` configure a *new* store; an
        existing store's config wins over them.  ``create=False`` raises
        :class:`FileNotFoundError` instead of initialising an empty
        store.  ``metrics``/``tracer`` wire observability into the whole
        stack (store, inner engine, WAL writer) at open time, so the
        recovery that just ran is reported too.
        """
        if engine not in ENGINE_KINDS:
            raise PersistenceError(
                f"engine must be one of {ENGINE_KINDS}, got {engine!r}")
        if keep_checkpoints < 1:
            raise PersistenceError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}")
        self = cls.__new__(cls)
        self._fs = fs or REAL_FS
        self._directory = str(directory)
        self._fsync_every = fsync_every
        self._keep_checkpoints = keep_checkpoints
        self._backend = backend
        self._writer: Optional[_wal.WalWriter] = None
        self._closed = False
        self._obs = None
        self._tracer = None
        self._wal_instruments = None
        self._recovery_ns: Optional[int] = None

        config_path = os.path.join(self._directory, CONFIG_NAME)
        if os.path.exists(config_path):
            config = _read_config(self._directory)
            self._config = config
            self._recover()
        else:
            if not create:
                raise FileNotFoundError(
                    f"{config_path}: not a durable store (create=False)")
            os.makedirs(self._directory, exist_ok=True)
            self._config = {
                "kind": CONFIG_KIND,
                "format_version": CONFIG_FORMAT_VERSION,
                "engine": engine,
                "gap": gap,
                "numbering": numbering,
            }
            self._initialise()
        if metrics is not None or tracer is not None:
            from repro.obs.instrument import attach
            attach(self, metrics=metrics, tracer=tracer)
        return self

    # ------------------------------------------------------------------
    # open paths
    # ------------------------------------------------------------------
    def _empty_engine(self):
        from repro.core.hybrid import HybridTCIndex
        from repro.core.index import IntervalTCIndex
        from repro.graph.digraph import DiGraph
        config = self._config
        if config["engine"] == "hybrid":
            return HybridTCIndex.build(DiGraph(), gap=config["gap"],
                                       numbering=config["numbering"],
                                       backend=self._backend)
        return IntervalTCIndex.build(DiGraph(), gap=config["gap"],
                                     numbering=config["numbering"])

    def _initialise(self) -> None:
        """Fresh store: config, checkpoint 0, empty first log segment."""
        atomic_write_bytes(os.path.join(self._directory, CONFIG_NAME),
                           json.dumps(self._config, indent=2).encode("utf-8"),
                           fs=self._fs, label="config")
        self._engine = self._empty_engine()
        _checkpoint.write_checkpoint(self._directory, self._engine, 0,
                                     fs=self._fs)
        self._report = None
        self._open_writer(os.path.join(self._directory,
                                       _checkpoint.wal_name(1)),
                          next_seq=1)

    def _recover(self) -> None:
        """Existing store: run recovery, then resume the log tail."""
        config = self._config
        started = time.perf_counter_ns()
        self._engine, report = recover(
            self._directory, engine_kind=config["engine"],
            gap=config["gap"], numbering=config["numbering"],
            backend=self._backend)
        self._recovery_ns = time.perf_counter_ns() - started
        self._report = report
        next_seq = report.last_seq + 1
        if report.tail_path is not None:
            tail = report.tail_path
        else:
            tail = os.path.join(self._directory,
                                _checkpoint.wal_name(next_seq))
        self._open_writer(tail, next_seq=next_seq)

    def _open_writer(self, path: str, *, next_seq: int) -> None:
        self._writer = _wal.WalWriter(path, next_seq=next_seq,
                                      fsync_every=self._fsync_every,
                                      fs=self._fs)
        self._writer.metrics = self._wal_instruments
        self._engine.journal = self._writer

    def _attach_observability(self, registry, tracer) -> None:
        """Finish :func:`repro.obs.instrument.attach` for the full stack.

        ``attach`` already set ``_obs``/``_tracer`` on the store itself;
        this wires the inner engine, the WAL writer, and reports the
        recovery that ran at open time (once — re-attaching later does
        not double-count it).
        """
        from repro.obs.instrument import WalInstruments, attach
        attach(self._engine, metrics=registry, tracer=tracer)
        if registry is None:
            self._wal_instruments = None
            if self._writer is not None:
                self._writer.metrics = None
            return
        self._wal_instruments = WalInstruments(registry)
        if self._writer is not None:
            self._writer.metrics = self._wal_instruments
        obs = self._obs
        if self._recovery_ns is not None and obs is not None:
            obs.counter("tc_recoveries_total",
                        help="crash recoveries run at open").inc()
            obs.histogram("tc_recovery_seconds",
                          help="wall time of open-time recovery "
                          ).observe_ns(self._recovery_ns)
            if self._report is not None:
                obs.counter("tc_recovered_ops_total",
                            help="WAL records replayed by recovery"
                            ).inc(self._report.ops_replayed)
            self._recovery_ns = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def engine_kind(self) -> str:
        """``"interval"`` or ``"hybrid"`` (fixed at store creation)."""
        return self._config["engine"]

    @property
    def engine(self):
        """The live in-memory engine (journalled; mutate it freely)."""
        return self._engine

    @property
    def index(self):
        """The underlying :class:`IntervalTCIndex` ground truth."""
        engine = self._engine
        return engine.index if self._config["engine"] == "hybrid" else engine

    @property
    def last_seq(self) -> int:
        """Sequence number of the last journalled operation."""
        return self._writer.last_seq if self._writer else 0

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        """What opening had to repair (``None`` for a fresh store)."""
        return self._report

    # ------------------------------------------------------------------
    # mutations — the engine journals each one through the WAL hook
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed or self._writer is None:
            raise PersistenceError(f"{self._directory}: store is closed")

    @instrumented("add_node")
    def add_node(self, node: Node, parents: Sequence[Node] = ()) -> None:
        self._check_open()
        self._engine.add_node(node, list(parents))

    @instrumented("add_arc")
    def add_arc(self, source: Node, destination: Node) -> None:
        self._check_open()
        self._engine.add_arc(source, destination)

    @instrumented("remove_arc")
    def remove_arc(self, source: Node, destination: Node) -> None:
        self._check_open()
        self._engine.remove_arc(source, destination)

    @instrumented("remove_node")
    def remove_node(self, node: Node) -> None:
        self._check_open()
        self._engine.remove_node(node)

    def renumber(self, gap: Optional[int] = None) -> None:
        self._check_open()
        self.index.renumber(gap)

    def merge_intervals(self) -> None:
        self._check_open()
        self.index.merge_intervals()

    def apply_diff(self, text: str) -> int:
        """Apply the CLI's textual diff format; returns ops applied.

        Resolution mirrors :func:`repro.core.batch.apply_diff` (a ``+ a
        b`` line inserts a node when an end-point is new), but every
        operation routes through the store's journalled mutators — the
        batch module's deferred-maintenance path bypasses the journal.
        """
        from repro.core.batch import parse_diff
        self._check_open()
        applied = 0
        known = {node for node in self.index.nodes()}
        for operation in parse_diff(text):
            kind = operation[0]
            if kind == "+arc":
                _, source, destination = operation
                if source in known and destination in known:
                    self.add_arc(source, destination)
                elif source in known:
                    self.add_node(destination, [source])
                    known.add(destination)
                elif destination in known:
                    self.add_node(source, [])
                    known.add(source)
                    self.add_arc(source, destination)
                else:
                    self.add_node(source, [])
                    self.add_node(destination, [source])
                    known.update((source, destination))
            elif kind == "add-node":
                self.add_node(operation[1], operation[2])
                known.add(operation[1])
            elif kind == "add-arc":
                self.add_arc(operation[1], operation[2])
            elif kind == "remove-arc":
                self.remove_arc(operation[1], operation[2])
            elif kind == "remove-node":
                self.remove_node(operation[1])
                known.discard(operation[1])
            else:  # pragma: no cover - parse_diff emits only the above
                raise ReproError(f"unknown diff operation {kind!r}")
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # queries (delegate to the engine)
    # ------------------------------------------------------------------
    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        return self._engine.reachable(source, destination)

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        return self._engine.successors(source, reflexive=reflexive)

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *,
                     reflexive: bool = True) -> Set[Node]:
        return self._engine.predecessors(destination, reflexive=reflexive)

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        return self._engine.iter_successors(source, reflexive=reflexive)

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        return self._engine.count_successors(source, reflexive=reflexive)

    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        return self._engine.reachable_many(pairs)

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        return self._engine.successors_many(sources, reflexive=reflexive)

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        return self._engine.predecessors_many(destinations,
                                              reflexive=reflexive)

    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        return self._engine.reachable_from_set(sources)

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        return self._engine.reaching_set(destinations)

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        return self._engine.any_reachable(sources, destinations)

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        return self._engine.are_disjoint(first, second)

    def nodes(self) -> Iterator[Node]:
        return self._engine.nodes()

    def capabilities(self) -> "EngineCapabilities":
        """Journalled mutations; batch behaviour follows the inner engine."""
        from repro.core.engine import EngineCapabilities
        inner = self._engine.capabilities()
        return EngineCapabilities(
            kind="durable", supports_updates=True,
            supports_batch=inner.supports_batch,
            is_frozen_snapshot=False, durable=True)

    def stats(self) -> dict:
        """Engine size report plus the store's durability accounting."""
        engine_stats = self._engine.stats()
        if hasattr(engine_stats, "as_dict"):
            engine_stats = engine_stats.as_dict()
        return {
            "engine": self._config["engine"],
            "directory": self._directory,
            "last_seq": self.last_seq,
            "engine_stats": engine_stats,
        }

    def __contains__(self, node: Node) -> bool:
        return node in self._engine

    def __len__(self) -> int:
        return len(self._engine)

    def verify(self) -> None:
        """Engine-level closure verification (tests and audits)."""
        self._engine.verify()

    # ------------------------------------------------------------------
    # durability control
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force the pending WAL batch to stable storage now."""
        self._check_open()
        self._writer.sync()

    def checkpoint(self, *, frozen_sidecar: bool = False) -> str:
        """Snapshot current state atomically; rotate the log.

        Sequence: fsync the log (nothing acknowledged can be lost by
        what follows), publish ``checkpoint-<seq>.json`` atomically,
        start a fresh log segment, then delete generations and segments
        older than the retention window.  A crash at *any* point leaves
        a recoverable store — at worst the old checkpoint plus a full
        replay.  Returns the new checkpoint's path.

        ``frozen_sidecar=True`` also publishes the frozen snapshot as a
        zero-copy ``checkpoint-<seq>.rtcf`` next to the generation (see
        :func:`repro.durability.checkpoint.write_checkpoint`); rotation
        removes sidecars together with their generations.
        """
        self._check_open()
        obs = self._obs
        started = time.perf_counter_ns() if obs is not None else 0
        writer = self._writer
        writer.sync()
        seq = writer.last_seq
        path = _checkpoint.write_checkpoint(self._directory, self._engine,
                                            seq, fs=self._fs,
                                            frozen_sidecar=frozen_sidecar)
        writer.close()
        self._open_writer(os.path.join(self._directory,
                                       _checkpoint.wal_name(seq + 1)),
                          next_seq=seq + 1)
        _checkpoint.rotate(self._directory, keep=self._keep_checkpoints,
                           fs=self._fs)
        self._fs.crash_point("checkpoint.post-rotate")
        if obs is not None:
            obs.counter("tc_checkpoint_total",
                        help="checkpoints published").inc()
            obs.histogram("tc_checkpoint_seconds",
                          help="checkpoint publish wall time"
                          ).observe_ns(time.perf_counter_ns() - started)
        return path

    def log_stats(self) -> dict:
        """Durability accounting for the open store."""
        stats = log_stats(self._directory)
        stats["pending"] = self._writer.pending if self._writer else 0
        stats["fsync_every"] = self._fsync_every
        stats["last_seq"] = self.last_seq
        return stats

    def close(self) -> None:
        """Fsync and release the log; the store directory stays valid."""
        if self._writer is not None:
            if self._engine.journal is self._writer:
                self._engine.journal = None
            self._writer.close()
            self._writer = None
        self._closed = True

    def __enter__(self) -> "DurableTCIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DurableTCIndex(directory={self._directory!r}, "
                f"engine={self._config['engine']!r}, nodes={len(self)}, "
                f"last_seq={self.last_seq})")


def log_stats(directory) -> dict:
    """Read-only durability stats for a store directory (CLI ``log-stats``).

    Scans segment sizes and record counts without opening the store (and
    without replaying), so it is safe on a store another process owns.
    """
    directory = str(directory)
    config = _read_config(directory)  # raises on a non-store directory
    checkpoints = _checkpoint.list_checkpoints(directory)
    segments = _checkpoint.list_segments(directory)
    segment_rows: List[dict] = []
    total_records = 0
    total_bytes = 0
    torn_bytes = 0
    for first_seq, path in segments:
        scan = _wal.scan_wal(path)
        size = os.path.getsize(path)
        segment_rows.append({
            "path": os.path.basename(path),
            "first_seq": first_seq,
            "records": len(scan.records),
            "bytes": size,
            "torn_bytes": scan.torn_bytes,
        })
        total_records += len(scan.records)
        total_bytes += size
        torn_bytes += scan.torn_bytes
    newest = checkpoints[-1][0] if checkpoints else None
    last_seq = newest or 0
    for row in reversed(segment_rows):
        if row["records"]:
            tail_first = row["first_seq"]
            last_seq = max(last_seq, tail_first + row["records"] - 1)
            break
    return {
        "directory": directory,
        "engine": config["engine"],
        "checkpoints": [{"wal_seq": seq, "path": os.path.basename(path)}
                        for seq, path in checkpoints],
        "newest_checkpoint_seq": newest,
        "segments": segment_rows,
        "total_records": total_records,
        "total_bytes": total_bytes,
        "torn_bytes": torn_bytes,
        "last_seq": last_seq,
        "replay_backlog": (last_seq - newest) if newest is not None
        else last_seq,
    }
