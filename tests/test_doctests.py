"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.condensation
import repro.graph.digraph
import repro.storage.database
import repro.storage.relation

MODULES = [
    repro.core.condensation,
    repro.graph.digraph,
    repro.storage.database,
    repro.storage.relation,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
