"""Op-level correctness: every endpoint against the set-closure oracle."""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.errors import CycleError, NodeNotFoundError
from repro.graph.generators import random_dag
from repro.server.client import ServerError
from repro.server.inprocess import ServerBackedEngine, ServerThread
from repro.testing.oracle import SetClosureOracle, compare_engine

from .harness import connected, run


def _engine_and_oracle(seed: int = 7, nodes: int = 24):
    graph = random_dag(nodes, 1.8, seed)
    oracle = SetClosureOracle(arcs=graph.arcs(), nodes=graph.nodes())
    return HybridTCIndex.build(graph), oracle


class TestQueryOps:
    def test_every_query_op_matches_oracle(self):
        engine, oracle = _engine_and_oracle()
        nodes = sorted(oracle.nodes(), key=repr)

        async def scenario():
            async with connected(engine) as (_, client):
                pairs = [(u, v) for u in nodes[:8] for v in nodes[:8]]
                answers = await client.check_many(pairs)
                assert answers == [oracle.reachable(u, v) for u, v in pairs]
                for node in nodes[:6]:
                    assert set(await client.expand(node)) == \
                        set(oracle.successors(node))
                    assert set(await client.list_reaching(node)) == \
                        oracle.predecessors(node)
                sources, sinks = nodes[:3], nodes[-3:]
                expected_any = any(oracle.reachable(u, v)
                                   for u in sources for v in sinks)
                assert await client.semijoin_any(sources, sinks) == \
                    expected_any
                forward = set.union(*(set(oracle.successors(u))
                                      for u in sources))
                assert set(await client.semijoin_forward(sources)) == forward
                backward = set.union(*(oracle.predecessors(v)
                                       for v in sinks))
                assert set(await client.semijoin_backward(sinks)) == backward
        run(scenario())

    def test_reflexive_flag(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (_, client):
                assert await client.expand("a") == ["a", "b"]
                assert await client.expand("a", reflexive=False) == ["b"]
                assert await client.list_reaching("b", reflexive=False) \
                    == ["a"]
        run(scenario())

    def test_not_found_is_typed(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (_, client):
                with pytest.raises(NodeNotFoundError):
                    await client.check("a", "ghost")
                with pytest.raises(NodeNotFoundError):
                    await client.expand("ghost")
                with pytest.raises(NodeNotFoundError):
                    await client.check_many([("a", "b"), ("ghost", "a")])
        run(scenario())


class TestWriteOps:
    def test_writes_become_visible_with_their_epoch(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (server, client):
                epoch = await client.add_node("c", parents=["b"])
                assert epoch >= 1
                assert await client.check("a", "c")
                epoch2 = await client.remove_arc("b", "c")
                assert epoch2 > epoch
                assert not await client.check("a", "c")
                await client.add_arc("a", "c")
                assert await client.check("a", "c")
                await client.remove_node("c")
                with pytest.raises(NodeNotFoundError):
                    await client.check("a", "c")
        run(scenario())

    def test_cycle_rejected_with_cycle_code(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b"), ("b", "c")])
            async with connected(engine) as (server, client):
                before = server.state.epoch
                with pytest.raises(CycleError):
                    await client.add_arc("c", "a")
                # A rejected write publishes nothing.
                assert server.state.epoch == before
                assert await client.check("a", "c")
        run(scenario())

    def test_read_only_server_refuses_writes(self):
        async def scenario():
            frozen = IntervalTCIndex.build(
                random_dag(12, 1.5, 3)).freeze()
            async with connected(frozen) as (server, client):
                assert server.state.read_only
                with pytest.raises(ServerError) as excinfo:
                    await client.add_arc("anything", "else")
                assert excinfo.value.code == "read-only"
                # Reads still fine.
                assert await client.ping() == "pong"
        run(scenario())

    def test_failed_write_does_not_poison_the_batch(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (_, client):
                with pytest.raises(NodeNotFoundError):
                    await client.add_arc("ghost", "b")
                epoch = await client.add_node("z2", parents=["b"])
                assert epoch >= 1
                assert await client.check("a", "z2")
        run(scenario())


class TestIntrospectionOps:
    def test_stats_and_epoch(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (_, client):
                stats = await client.stats()
                assert stats["epoch"] == 0
                assert stats["nodes"] == 2
                assert stats["read_only"] is False
                assert stats["coalescer"]["enabled"] is True
                assert await client.epoch() == 0
                await client.add_node("c", parents=["b"])
                assert await client.epoch() == 1
        run(scenario())

    def test_shutdown_op(self):
        async def scenario():
            engine = HybridTCIndex.from_arcs([("a", "b")])
            async with connected(engine) as (server, client):
                assert await client.shutdown() == "bye"
                # run() would now unblock; here just observe the flag.
                assert server._shutdown.is_set()
        run(scenario())


class TestInProcessHarness:
    def test_server_backed_engine_matches_oracle(self):
        """The fuzzer's bridge: full compare_engine over a live server."""
        graph = random_dag(18, 1.6, 11)
        oracle = SetClosureOracle(arcs=graph.arcs(), nodes=graph.nodes())
        with ServerThread(lambda: HybridTCIndex.build(graph)) as thread:
            engine = ServerBackedEngine(thread)
            checks = compare_engine("server", engine, oracle,
                                    predecessors=True)
            assert checks == 2 * len(oracle)

    def test_harness_surfaces_factory_errors(self):
        def explode():
            raise RuntimeError("factory boom")
        with pytest.raises(RuntimeError, match="factory boom"):
            ServerThread(explode)
