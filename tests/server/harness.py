"""Loop helpers shared by the server battery.

There is no async test plugin in the toolchain, so every test is a
plain function that drives its own event loop through :func:`run`.
Servers bind port 0 on loopback; nothing here touches the network
beyond 127.0.0.1.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient
from repro.server.protocol import read_frame


def run(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


@asynccontextmanager
async def serving(engine, **kwargs):
    """A started server on an ephemeral loopback port."""
    server = ReachabilityServer(engine, **kwargs)
    host, port = await server.start("127.0.0.1", 0)
    try:
        yield server, host, port
    finally:
        await server.stop()


@asynccontextmanager
async def connected(engine, **kwargs):
    """A started server plus one connected client."""
    async with serving(engine, **kwargs) as (server, host, port):
        client = await ReachabilityClient.connect(host, port)
        try:
            yield server, client
        finally:
            await client.close()


async def next_response(reader, *, timeout: float = 5.0):
    """One decoded response frame off a raw reader, with a deadline."""
    return await asyncio.wait_for(read_frame(reader), timeout)


async def http_exchange(host, port, request: bytes, *,
                        timeout: float = 5.0) -> bytes:
    """One HTTP request/response on a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request)
    await writer.drain()
    try:
        return await asyncio.wait_for(reader.read(1 << 20), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
