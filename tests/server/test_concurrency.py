"""The concurrency battery: interleaved reads and writes vs the oracle.

The contract under test, from the epoch-swap design:

* every response is correct *for the epoch it was served at* — reads
  raced with writes must match the set-closure oracle's state at the
  reported epoch, never a blend of two epochs (torn), never a state
  more than the in-flight publish behind;
* response epochs are monotone per connection, and a client that saw a
  write acknowledged at epoch *e* never reads below *e* afterwards
  (read-your-writes);
* coalescing is invisible: a batch of checks answered through one
  ``reachable_many`` drain is byte-identical to the same checks
  answered one at a time.
"""

from __future__ import annotations

import asyncio

from repro.core.hybrid import HybridTCIndex
from repro.graph.generators import random_dag
from repro.server.client import ReachabilityClient
from repro.server.protocol import encode_frame
from repro.testing.oracle import SetClosureOracle

from .harness import next_response, run, serving


def _closure_snapshot(oracle: SetClosureOracle) -> dict:
    return dict(oracle.closure())


class EpochTimeline:
    """Oracle state per published epoch, recorded by the writer side."""

    def __init__(self, oracle: SetClosureOracle) -> None:
        self.oracle = oracle
        self.by_epoch = {0: _closure_snapshot(oracle)}

    def apply(self, epoch: int, method: str, *args) -> None:
        getattr(self.oracle, method)(*args)
        self.by_epoch[epoch] = _closure_snapshot(self.oracle)

    def check(self, epoch: int, source, destination) -> bool:
        closure = self.by_epoch[epoch]
        return destination in closure[source]


class TestInterleavedReadsAndWrites:
    def test_every_response_matches_oracle_at_its_epoch(self):
        """Readers hammer a server whose graph a writer keeps mutating.

        Every single answer must equal the oracle's answer *at the
        epoch the server says it served* — the strongest form of the
        not-torn / not-stale guarantee this protocol makes.
        """
        graph = random_dag(20, 1.7, 5)
        oracle = SetClosureOracle(arcs=graph.arcs(), nodes=graph.nodes())
        base_nodes = sorted(oracle.nodes(), key=repr)
        timeline = EpochTimeline(oracle)
        engine = HybridTCIndex.build(graph, max_delta=1_000_000,
                                     max_ratio=1_000_000.0)
        observations = []

        async def writer(client: ReachabilityClient) -> None:
            # A scripted churn: graft a chain node, wire it to a
            # cycle-safe target, tear the wire back out.
            import random
            rng = random.Random(99)
            for i in range(12):
                parent = rng.choice(base_nodes)
                node = f"w{i}"
                epoch = await client.add_node(node, parents=[parent])
                timeline.apply(epoch, "add_node", node)
                timeline.apply(epoch, "add_arc", parent, node)
                safe = [n for n in base_nodes
                        if n != parent
                        and not timeline.oracle.reachable(n, parent)]
                if safe:
                    target = rng.choice(safe)
                    epoch = await client.add_arc(node, target)
                    timeline.apply(epoch, "add_arc", node, target)
                    epoch = await client.remove_arc(node, target)
                    timeline.apply(epoch, "remove_arc", node, target)
                await asyncio.sleep(0)

        async def reader(client: ReachabilityClient, seed: int) -> None:
            import random
            rng = random.Random(seed)
            for _ in range(150):
                source = rng.choice(base_nodes)
                destination = rng.choice(base_nodes)
                response = await client.request("check", u=source,
                                                v=destination)
                assert response["ok"], response
                observations.append((source, destination,
                                     response["result"],
                                     response["epoch"]))
                if rng.random() < 0.1:
                    await asyncio.sleep(0)

        async def scenario():
            async with serving(engine) as (_, host, port):
                write_client = await ReachabilityClient.connect(host, port)
                read_clients = [
                    await ReachabilityClient.connect(host, port)
                    for _ in range(3)]
                try:
                    await asyncio.gather(
                        writer(write_client),
                        *(reader(client, 1000 + i)
                          for i, client in enumerate(read_clients)))
                finally:
                    for client in read_clients:
                        await client.close()
                    await write_client.close()

        run(scenario())
        assert observations, "readers observed nothing"
        seen_epochs = set()
        for source, destination, answer, epoch in observations:
            assert epoch in timeline.by_epoch, \
                f"served at unrecorded epoch {epoch}"
            seen_epochs.add(epoch)
            expected = timeline.check(epoch, source, destination)
            assert answer == expected, (
                f"check({source!r}, {destination!r}) at epoch {epoch}: "
                f"server said {answer}, oracle at that epoch says "
                f"{expected}")
        # The race actually happened: reads landed on several epochs.
        assert len(seen_epochs) > 1

    def test_batched_checks_never_tear_across_a_swap(self):
        """A check-many raced with arc flips answers at ONE epoch.

        The pairs are chosen so a torn batch would be visible: with the
        chain a->b->c and the flipping arc b->c, `a reaches c` must
        always equal `b reaches c` — mixing two epochs in one batch
        breaks that equality.
        """
        engine = HybridTCIndex.from_arcs([("a", "b"), ("b", "c")],
                                         max_delta=1_000_000,
                                         max_ratio=1_000_000.0)
        oracle = SetClosureOracle(arcs=[("a", "b"), ("b", "c")])
        timeline = EpochTimeline(oracle)

        async def flipper(client: ReachabilityClient) -> None:
            for _ in range(15):
                epoch = await client.remove_arc("b", "c")
                timeline.apply(epoch, "remove_arc", "b", "c")
                await asyncio.sleep(0)
                epoch = await client.add_arc("b", "c")
                timeline.apply(epoch, "add_arc", "b", "c")
                await asyncio.sleep(0)

        batches = []

        async def prober(client: ReachabilityClient) -> None:
            pairs = [("a", "c"), ("b", "c"), ("a", "b")]
            for _ in range(120):
                response = await client.request(
                    "check-many", pairs=[list(p) for p in pairs])
                assert response["ok"], response
                batches.append((response["result"], response["epoch"]))

        async def scenario():
            async with serving(engine) as (_, host, port):
                flip_client = await ReachabilityClient.connect(host, port)
                probe_client = await ReachabilityClient.connect(host, port)
                try:
                    await asyncio.gather(flipper(flip_client),
                                         prober(probe_client))
                finally:
                    await probe_client.close()
                    await flip_client.close()

        run(scenario())
        flipped = set()
        for (a_c, b_c, a_b), epoch in batches:
            assert a_b is True
            # Internal consistency: both sides of the flipping arc agree.
            assert a_c == b_c, (
                f"torn batch at epoch {epoch}: a->c={a_c} but b->c={b_c}")
            # And the whole batch matches the oracle at that epoch.
            assert a_c == timeline.check(epoch, "a", "c")
            assert b_c == timeline.check(epoch, "b", "c")
            flipped.add(b_c)
        assert flipped == {True, False}, \
            "the race never caught both arc states"

    def test_epochs_monotone_and_read_your_writes(self):
        engine = HybridTCIndex.from_arcs([("a", "b")],
                                         max_delta=1_000_000,
                                         max_ratio=1_000_000.0)

        async def scenario():
            async with serving(engine) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    last_epoch = 0
                    for i in range(10):
                        ack = await client.add_node(f"n{i}", parents=["a"])
                        assert ack > last_epoch
                        response = await client.request(
                            "check", u="a", v=f"n{i}")
                        assert response["result"] is True
                        # Never below the acknowledged write's epoch.
                        assert response["epoch"] >= ack
                        assert response["epoch"] >= last_epoch
                        last_epoch = response["epoch"]
                finally:
                    await client.close()

        run(scenario())

    def test_concurrent_writers_converge(self):
        """Racing writers: every ack'd write is visible at the end."""
        engine = HybridTCIndex.from_arcs([("root", "stem")],
                                         max_delta=1_000_000,
                                         max_ratio=1_000_000.0)

        async def scenario():
            async with serving(engine) as (server, host, port):
                clients = [await ReachabilityClient.connect(host, port)
                           for _ in range(4)]
                try:
                    async def add_fan(client, tag):
                        return [await client.add_node(f"{tag}{i}",
                                                      parents=["stem"])
                                for i in range(8)]

                    acks = await asyncio.gather(
                        *(add_fan(client, chr(ord("p") + i))
                          for i, client in enumerate(clients)))
                    final = await clients[0].expand("root")
                    expected = {"root", "stem"} | {
                        f"{chr(ord('p') + i)}{j}"
                        for i in range(4) for j in range(8)}
                    assert set(final) == expected
                    # Folding happened: fewer publishes than writes
                    # is allowed, more is impossible.
                    top = server.state.epoch
                    assert top <= 32
                    assert all(ack <= top
                               for per_client in acks
                               for ack in per_client)
                finally:
                    for client in clients:
                        await client.close()

        run(scenario())


class TestCoalescingTransparency:
    def test_batch_answers_byte_identical_to_singles(self):
        """The wire bytes with coalescing on == off, frame for frame."""
        graph = random_dag(25, 1.8, 13)
        nodes = sorted(graph.nodes(), key=repr)
        import random
        rng = random.Random(31)
        requests = [
            {"id": i, "op": "check", "u": rng.choice(nodes),
             "v": rng.choice(nodes)}
            for i in range(64)]
        blob = b"".join(encode_frame(request) for request in requests)

        async def collect(coalesce: bool) -> list:
            engine = HybridTCIndex.build(graph)
            frames = []
            async with serving(engine, coalesce=coalesce) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                # One write: the server sees the whole pipeline at once,
                # the strongest coalescing case.
                writer.write(blob)
                await writer.drain()
                for _ in requests:
                    frames.append(await next_response(reader))
                writer.close()
            return frames

        coalesced = run(collect(True))
        singles = run(collect(False))
        # Same decoded answers, same order...
        assert coalesced == singles
        # ...and byte-identical frames (deterministic encoding).
        assert [encode_frame(r) for r in coalesced] == \
            [encode_frame(r) for r in singles]

    def test_trickled_checks_also_match(self):
        """Checks arriving one socket write at a time agree too."""
        engine_arcs = [("a", "b"), ("b", "c"), ("a", "d")]
        pairs = [("a", "c"), ("c", "a"), ("d", "b"), ("a", "d")] * 5

        async def collect(coalesce: bool) -> list:
            engine = HybridTCIndex.from_arcs(engine_arcs)
            results = []
            async with serving(engine, coalesce=coalesce) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    for source, destination in pairs:
                        results.append(
                            await client.check(source, destination))
                finally:
                    await client.close()
            return results

        assert run(collect(True)) == run(collect(False))

    def test_concurrent_connections_coalesce_into_fewer_drains(self):
        """Many parallel clients actually share reachable_many calls."""
        graph = random_dag(30, 1.8, 17)
        nodes = sorted(graph.nodes(), key=repr)
        engine = HybridTCIndex.build(graph)

        async def scenario():
            async with serving(engine, coalesce=True,
                               window=0.002) as (server, host, port):
                # Warm the EWMA so the window engages.
                clients = [await ReachabilityClient.connect(host, port)
                           for _ in range(8)]
                try:
                    async def hammer(client, seed):
                        import random
                        rng = random.Random(seed)
                        for _ in range(40):
                            await client.check(rng.choice(nodes),
                                               rng.choice(nodes))

                    await asyncio.gather(
                        *(hammer(client, i)
                          for i, client in enumerate(clients)))
                finally:
                    for client in clients:
                        await client.close()
                stats = server.coalescer.stats()
                # 320 checks; require genuine sharing, not one-per-drain.
                assert stats["ewma_batch_size"] > 1.0
        run(scenario())
