"""Graceful shutdown: signals, connection draining, subprocess exits.

Two layers: in-process tests pin the drain semantics (idle connections
close immediately, in-flight pipelined work is answered before the
socket dies, SIGTERM on a live loop trips the shutdown event), and
subprocess tests drive the real ``repro serve`` CLI — single-process
and cluster — asserting a clean exit line and status 0 under SIGTERM.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient
from repro.server.inprocess import ServerThread
from repro.server.protocol import encode_frame

from .harness import next_response, run, serving

REPO = Path(__file__).resolve().parents[2]


def _engine():
    return HybridTCIndex.from_arcs([("a", "b"), ("b", "c")])


# ----------------------------------------------------------------------
# in-process drain semantics
# ----------------------------------------------------------------------

def test_stop_closes_idle_connections_without_waiting_for_grace():
    async def scenario():
        server = ReachabilityServer(_engine(), drain_grace=30.0)
        host, port = await server.start("127.0.0.1", 0)
        client = await ReachabilityClient.connect(host, port)
        assert await client.check("a", "c") is True
        loop = asyncio.get_running_loop()
        started = loop.time()
        await server.stop()  # the idle connection must not pin us
        assert loop.time() - started < 5.0, \
            "stop() waited the full grace period for an idle connection"
        await client.close()
    run(scenario())


def test_shutdown_answers_in_flight_pipelined_requests():
    """Frames already on the wire when shutdown is requested are
    answered (drained), not dropped."""
    async def scenario():
        async with serving(_engine()) as (server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            blob = b"".join(
                encode_frame({"id": i, "op": "check", "u": "a", "v": "b"})
                for i in range(20))
            writer.write(blob)
            await writer.drain()
            server.request_shutdown()
            responses = [await next_response(reader) for _ in range(20)]
            assert [r["id"] for r in responses] == list(range(20))
            assert all(r["ok"] and r["result"] is True for r in responses)
            writer.close()
    run(scenario())


def test_sigterm_trips_graceful_shutdown_in_process():
    async def scenario():
        server = ReachabilityServer(_engine())
        await server.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        if not server.install_signal_handlers():
            pytest.skip("signal handlers unavailable on this loop")
        try:
            waiter = asyncio.ensure_future(server.serve_until_shutdown())
            await asyncio.sleep(0)
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(waiter, 10.0)
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except (RuntimeError, ValueError):
                    pass
        await server.stop()
    run(scenario())


def test_install_signal_handlers_reports_failure_off_main_thread():
    """Signal handlers only work on the main thread; the cluster workers
    rely on install returning False (not raising) everywhere else."""
    async def _install(server) -> bool:
        return server.install_signal_handlers()

    with ServerThread(_engine) as thread:
        assert thread.run_coro(_install(thread._server)) is False


# ----------------------------------------------------------------------
# real CLI processes under SIGTERM / SIGINT
# ----------------------------------------------------------------------

def _spawn_serve(tmp_path, *extra):
    edges = tmp_path / "edges.txt"
    if not edges.exists():
        edges.write_text("a b\nb c\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(edges),
         "--engine", "hybrid", "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)


def _await_serving_line(proc, *, timeout: float = 60.0):
    """Read stdout lines until the 'serving on' banner (or fail)."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            rest = proc.stdout.read() or ""
            pytest.fail("server exited before serving: "
                        + "".join(lines) + rest)
        line = proc.stdout.readline()
        if not line:
            continue
        lines.append(line)
        if "serving on" in line:
            return lines
    proc.kill()
    pytest.fail("server never printed the serving banner: "
                + "".join(lines))


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_single_process_serve_exits_cleanly_on_signal(tmp_path, signum):
    proc = _spawn_serve(tmp_path)
    try:
        _await_serving_line(proc)
        proc.send_signal(signum)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "shut down cleanly" in out


def test_cluster_serve_exits_cleanly_on_sigterm_and_reaps_workers(tmp_path):
    snap = tmp_path / "snap"
    proc = _spawn_serve(tmp_path, "--workers", "2",
                        "--snapshot-dir", str(snap))
    try:
        _await_serving_line(proc)
        # Give the workers a beat to finish coming up, then terminate.
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "shut down cleanly" in out
    # The snapshot dir keeps only generation state — every unix socket
    # was unlinked on the way down.
    leftovers = [name for name in os.listdir(snap)
                 if name.endswith(".sock")]
    assert leftovers == []
    # And the published generation survived the shutdown (a restart
    # could re-attach to it).
    assert (snap / "CURRENT").exists()
