"""The chaos proxy itself: determinism, each fault mode, and survival.

A plain echo server sits upstream for the byte-level tests (payload
integrity through splits, resets surfacing, partitions); the final test
puts a real :class:`ReachabilityServer` behind the proxy and demands
oracle-exact answers from a retrying client despite drops and resets.
"""

from __future__ import annotations

import asyncio
import random
from contextlib import asynccontextmanager

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.graph.generators import random_dag
from repro.server.client import ReachabilityClient, RetryPolicy
from repro.testing.netchaos import ChaosConfig, ChaosProxy

from .harness import run, serving


@asynccontextmanager
async def echo_upstream():
    async def echo(reader, writer):
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    return
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already aborted
                pass

    server = await asyncio.start_server(echo, "127.0.0.1", 0)
    sockname = server.sockets[0].getsockname()
    try:
        yield sockname[0], sockname[1]
    finally:
        server.close()
        await server.wait_closed()


async def _read_exactly(reader, count):
    data = bytearray()
    while len(data) < count:
        chunk = await asyncio.wait_for(reader.read(count - len(data)), 5.0)
        if not chunk:
            break
        data.extend(chunk)
    return bytes(data)


class TestDeterminism:
    def test_same_seed_same_connection_same_fate(self):
        config = ChaosConfig(seed=99)
        first = [config.rng_for(3).random() for _ in range(16)]
        assert first == [ChaosConfig(seed=99).rng_for(3).random()
                         for _ in range(16)]

    def test_streams_differ_across_connections_and_seeds(self):
        config = ChaosConfig(seed=99)
        draws = lambda rng: [rng.random() for _ in range(8)]  # noqa: E731
        assert draws(config.rng_for(3)) != draws(config.rng_for(4))
        assert draws(config.rng_for(3)) != \
            draws(ChaosConfig(seed=100).rng_for(3))


class TestFaultModes:
    def test_clean_proxy_relays_verbatim(self):
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(host, port)
                try:
                    reader, writer = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    payload = bytes(range(256)) * 8
                    writer.write(payload)
                    await writer.drain()
                    assert await _read_exactly(reader, len(payload)) == \
                        payload
                    writer.close()
                finally:
                    await proxy.close()
                assert proxy.stats["connections"] == 1
                assert proxy.stats["resets"] == 0
        run(scenario())

    def test_partial_writes_reassemble_intact(self):
        """Splitting every chunk into tiny pieces reorders nothing and
        corrupts nothing — it only moves frame boundaries."""
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(
                    host, port, ChaosConfig(seed=5, partial_write_prob=1.0,
                                            partial_write_max=5))
                try:
                    reader, writer = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    payload = bytes(range(256)) * 16
                    writer.write(payload)
                    await writer.drain()
                    assert await _read_exactly(reader, len(payload)) == \
                        payload
                    writer.close()
                finally:
                    await proxy.close()
                assert proxy.stats["splits"] > 0
        run(scenario())

    def test_reset_surfaces_to_the_client(self):
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(
                    host, port, ChaosConfig(seed=5, reset_prob=1.0))
                try:
                    reader, writer = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    payload = b"doomed" * 100
                    writer.write(payload)
                    await writer.drain()
                    # The abort may surface as a reset exception or as a
                    # truncated stream; either way the echo never
                    # completes.
                    received = bytearray()
                    try:
                        while True:
                            data = await asyncio.wait_for(
                                reader.read(4096), 5.0)
                            if not data:
                                break
                            received.extend(data)
                    except (ConnectionResetError, OSError):
                        pass
                    assert len(received) < len(payload)
                finally:
                    await proxy.close()
                assert proxy.stats["resets"] >= 1
        run(scenario())

    def test_drop_prob_one_severs_every_connection(self):
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(
                    host, port, ChaosConfig(seed=5, drop_prob=1.0))
                try:
                    reader, writer = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    try:
                        data = await asyncio.wait_for(reader.read(64), 5.0)
                        assert data == b""
                    except (ConnectionResetError, OSError):
                        pass
                    writer.close()
                finally:
                    await proxy.close()
                assert proxy.stats["dropped"] == 1
        run(scenario())

    def test_sever_all_is_a_partition_not_a_shutdown(self):
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(host, port)
                try:
                    reader, writer = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    writer.write(b"ping")
                    await writer.drain()
                    assert await _read_exactly(reader, 4) == b"ping"
                    proxy.sever_all()
                    try:
                        assert await asyncio.wait_for(
                            reader.read(64), 5.0) == b""
                    except (ConnectionResetError, OSError):
                        pass
                    # New connections still go through: a partition
                    # healed, not a proxy that died.
                    reader2, writer2 = await asyncio.open_connection(
                        proxy.host, proxy.port)
                    writer2.write(b"back")
                    await writer2.drain()
                    assert await _read_exactly(reader2, 4) == b"back"
                    writer2.close()
                finally:
                    await proxy.close()
        run(scenario())

    def test_close_stops_accepting(self):
        async def scenario():
            async with echo_upstream() as (host, port):
                proxy = await ChaosProxy.create(host, port)
                address = (proxy.host, proxy.port)
                await proxy.close()
                with pytest.raises((ConnectionRefusedError, OSError)):
                    await asyncio.open_connection(*address)
        run(scenario())


class TestServiceUnderChaos:
    def test_retrying_client_stays_exact_through_chaos(self):
        """Latency, splits, stalls, resets, and drops — every call that
        completes must still be oracle-exact, and with retries every
        call completes."""
        graph = random_dag(40, 1.6, 11)
        engine = HybridTCIndex.build(graph)
        nodes = sorted(graph.nodes(), key=repr)
        rng = random.Random(11)
        pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)]
        expected = [engine.reachable(u, v) for u, v in pairs]

        async def scenario():
            async with serving(engine) as (_, host, port):
                proxy = await ChaosProxy.create(
                    host, port,
                    ChaosConfig(seed=1729, latency_ms=(0.0, 1.0),
                                partial_write_prob=0.3,
                                partial_write_max=32,
                                stall_prob=0.02, stall_ms=(2.0, 10.0),
                                reset_prob=0.02, drop_prob=0.05))
                client = await ReachabilityClient.connect(
                    proxy.host, proxy.port, call_timeout=5.0,
                    retry=RetryPolicy(attempts=12, base_delay=0.01,
                                      max_delay=0.2,
                                      rng=random.Random(1729)))
                try:
                    answers = [await client.check(u, v)
                               for u, v in pairs]
                    assert answers == expected
                finally:
                    await client.close()
                    await proxy.close()
                assert proxy.stats["connections"] >= 1
        run(scenario())
