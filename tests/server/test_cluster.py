"""Cluster battery: forked workers, cross-process epochs, supervision.

Every test here spins up a real preforked cluster — separate OS
processes serving mmap'd generation files — so the invariants under
test (read-your-writes across the fork boundary, oracle agreement at
every served epoch, worker respawn) are exercised end to end, not
simulated.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.graph.generators import random_dag
from repro.server.client import ReachabilityClient, ServerError
from repro.server.inprocess import ClusterThread
from repro.testing.oracle import SetClosureOracle

from .harness import http_exchange

ARCS = [("a", "b"), ("b", "c"), ("a", "d")]


def _factory():
    return HybridTCIndex.from_arcs(ARCS)


def _cluster(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("poll_interval", 0.005)
    return ClusterThread(_factory, **kwargs)


def _http_json(thread, path):
    cluster = thread.cluster
    raw = thread.run_coro(http_exchange(
        cluster.admin_host, cluster.admin_port,
        b"GET " + path + b" HTTP/1.1\r\nHost: t\r\n\r\n"))
    head, _, body = raw.partition(b"\r\n\r\n")
    return head, body


# ----------------------------------------------------------------------
# basic serving through forked workers
# ----------------------------------------------------------------------

def test_both_workers_answer_queries():
    """Target each worker via its admin socket: both forked processes
    must hold a live snapshot and answer independently."""
    with _cluster() as thread:
        for worker_id in (0, 1):
            client = thread.connect_worker(worker_id)
            try:
                assert thread.run_coro(client.check("a", "c")) is True
                stats = thread.run_coro(client.stats())
                assert stats["worker_id"] == worker_id
                assert stats["generation"].startswith("gen-")
            finally:
                thread.run_coro(client.close())


def test_write_through_a_worker_reaches_every_worker():
    """Write lands on whatever worker the kernel picked, gets forwarded
    to the writer process, and — after the ack — every worker serves the
    new generation (the forwarding worker synchronously, its sibling via
    the poll loop)."""
    with _cluster() as thread:
        client = thread.connect()
        try:
            ack = thread.run_coro(client.add_arc("d", "c"))
        finally:
            thread.run_coro(client.close())
        assert ack >= 1
        deadline = time.monotonic() + 10.0
        for worker_id in (0, 1):
            pinned = thread.connect_worker(worker_id)
            try:
                while True:
                    stats = thread.run_coro(pinned.stats())
                    if stats["epoch"] >= ack:
                        break
                    assert time.monotonic() < deadline, \
                        f"worker {worker_id} never saw epoch {ack}"
                    time.sleep(0.005)
                assert thread.run_coro(pinned.check("d", "c")) is True
            finally:
                thread.run_coro(pinned.close())


def test_read_your_writes_on_one_connection():
    """The ISSUE's cross-process guarantee: an acked write is
    immediately visible to a read on the same connection, even though
    the write was applied in the writer process and the read is served
    from a worker's mmap of the published generation."""
    with _cluster() as thread:
        client = thread.connect()
        try:
            last = 0
            for i in range(5):
                ack = thread.run_coro(
                    client.add_node(f"n{i}", parents=["c"]))
                assert ack > last
                last = ack
                # Immediate read on the same connection: must see it.
                assert thread.run_coro(client.check("a", f"n{i}")) is True
        finally:
            thread.run_coro(client.close())


def test_writes_are_refused_when_serving_a_frozen_snapshot():
    with ClusterThread(lambda: HybridTCIndex.from_arcs(ARCS).snapshot(),
                       workers=2, poll_interval=0.005) as thread:
        assert thread.call("check", u="a", v="c") is True
        with pytest.raises(ServerError) as excinfo:
            thread.call("add-arc", u="c", v="d")
        assert excinfo.value.code == "read-only"


# ----------------------------------------------------------------------
# racing writers vs the oracle, across the process boundary
# ----------------------------------------------------------------------

class EpochTimeline:
    """Oracle state per published epoch (the same construction as
    tests/server/test_concurrency.py, here fed by acks that crossed a
    process boundary)."""

    def __init__(self, oracle: SetClosureOracle) -> None:
        self.oracle = oracle
        self.by_epoch = {0: dict(oracle.closure())}

    def apply(self, epoch: int, method: str, *args) -> None:
        getattr(self.oracle, method)(*args)
        self.by_epoch[epoch] = dict(self.oracle.closure())

    def check(self, epoch: int, source, destination) -> bool:
        return destination in self.by_epoch[epoch][source]


def test_every_raced_answer_matches_oracle_at_its_epoch():
    """Readers race a writer through the live cluster; every answer
    must match the oracle *at the epoch the worker says it served*.
    Workers re-attach to generations mid-race, so a stale-but-consistent
    answer is legal and a torn or unattributable one is not."""
    graph = random_dag(16, 1.6, 7)
    oracle = SetClosureOracle(arcs=graph.arcs(), nodes=graph.nodes())
    base_nodes = sorted(oracle.nodes(), key=repr)
    timeline = EpochTimeline(oracle)
    observations = []

    def cluster_factory():
        return HybridTCIndex.build(graph, max_delta=1_000_000,
                                   max_ratio=1_000_000.0)

    with ClusterThread(cluster_factory, workers=2,
                       poll_interval=0.002) as thread:

        async def writer() -> None:
            import random
            rng = random.Random(99)
            client = await ReachabilityClient.connect(thread.host,
                                                      thread.port)
            try:
                for i in range(10):
                    parent = rng.choice(base_nodes)
                    node = f"w{i}"
                    epoch = await client.add_node(node, parents=[parent])
                    timeline.apply(epoch, "add_node", node)
                    timeline.apply(epoch, "add_arc", parent, node)
                    safe = [n for n in base_nodes
                            if n != parent
                            and not timeline.oracle.reachable(n, parent)]
                    if safe:
                        target = rng.choice(safe)
                        epoch = await client.add_arc(node, target)
                        timeline.apply(epoch, "add_arc", node, target)
                        epoch = await client.remove_arc(node, target)
                        timeline.apply(epoch, "remove_arc", node, target)
                    await asyncio.sleep(0.001)
            finally:
                await client.close()

        async def reader(seed: int) -> None:
            import random
            rng = random.Random(seed)
            client = await ReachabilityClient.connect(thread.host,
                                                      thread.port)
            try:
                for _ in range(100):
                    source = rng.choice(base_nodes)
                    destination = rng.choice(base_nodes)
                    response = await client.request("check", u=source,
                                                    v=destination)
                    assert response["ok"], response
                    observations.append((source, destination,
                                         response["result"],
                                         response["epoch"]))
                    if rng.random() < 0.1:
                        await asyncio.sleep(0)
            finally:
                await client.close()

        async def race() -> None:
            await asyncio.wait_for(
                asyncio.gather(writer(), reader(1000), reader(1001)), 120.0)

        thread.run_coro(race())

    assert observations, "readers observed nothing"
    seen_epochs = set()
    for source, destination, result, epoch in observations:
        assert epoch in timeline.by_epoch, \
            f"worker reported unknown epoch {epoch}"
        expected = timeline.check(epoch, source, destination)
        assert result == expected, \
            (f"check({source},{destination}) at epoch {epoch}: "
             f"got {result}, oracle says {expected}")
        seen_epochs.add(epoch)
    assert len(seen_epochs) > 1, "race never spanned an epoch boundary"


def test_concurrent_writers_through_different_connections_converge():
    """Several connections (spread across workers by the kernel) write
    concurrently; the final closure is the union of all their fans."""
    with _cluster() as thread:

        async def fan(writer_id: int) -> int:
            client = await ReachabilityClient.connect(thread.host,
                                                      thread.port)
            last = 0
            try:
                for i in range(4):
                    last = await client.add_node(
                        f"f{writer_id}.{i}", parents=["a"])
            finally:
                await client.close()
            return last

        async def race() -> list:
            return await asyncio.wait_for(
                asyncio.gather(*(fan(w) for w in range(3))), 120.0)

        acks = thread.run_coro(race())

        expected = {"a", "b", "c", "d"} | {
            f"f{w}.{i}" for w in range(3) for i in range(4)}
        assert set(thread.call("expand", u="a")) == expected
        # 12 writes → at most 12 epochs; folding may make it fewer, but
        # the final epoch must cover every ack.
        stats = thread.call("stats")
        assert stats["epoch"] >= max(acks)
        assert stats["epoch"] <= 12


# ----------------------------------------------------------------------
# supervision and the parent's merged control plane
# ----------------------------------------------------------------------

def test_killed_worker_is_respawned_and_serves_again():
    with _cluster() as thread:
        cluster = thread.cluster
        old_pid = cluster._workers[0].process.pid
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            record = cluster._workers[0]
            if record.process.pid != old_pid and record.process.is_alive():
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker 0 was not respawned")
        assert record.restarts >= 1
        # The respawned worker attached to the current generation and
        # answers on its (recreated) admin socket.
        client = thread.connect_worker(0)
        try:
            assert thread.run_coro(client.check("a", "c")) is True
        finally:
            thread.run_coro(client.close())


def test_parent_healthz_reports_epoch_generation_and_workers():
    with _cluster() as thread:
        client = thread.connect()
        try:
            thread.run_coro(client.add_arc("c", "d"))
        finally:
            thread.run_coro(client.close())
        head, body = _http_json(thread, b"/healthz")
        assert head.startswith(b"HTTP/1.1 200")
        health = json.loads(body)
        assert health["ok"] is True
        assert health["role"] == "writer"
        assert health["epoch"] >= 1
        assert health["generation"] == f"gen-{health['epoch']}.rtcf"
        workers = {w["worker_id"]: w for w in health["workers"]}
        assert set(workers) == {0, 1}
        assert all(w["alive"] for w in workers.values())


def test_parent_metrics_merge_all_workers():
    with _cluster() as thread:
        # Touch both workers so each records at least one request.
        for worker_id in (0, 1):
            client = thread.connect_worker(worker_id)
            try:
                thread.run_coro(client.check("a", "b"))
            finally:
                thread.run_coro(client.close())
        head, body = _http_json(thread, b"/metrics")
        assert head.startswith(b"HTTP/1.1 200")
        text = body.decode("utf-8")
        assert "# TYPE tc_server_requests_total counter" in text
        for tag in ('worker_id="0"', 'worker_id="1"', 'worker_id="writer"'):
            assert tag in text, f"missing {tag} in merged metrics"
