"""Client-side resilience: timeouts, reconnect, backoff, write safety.

The client's failure semantics are exercised against tiny scripted
servers (accept-and-ignore, abort-after-read, overload-then-ok) so every
failure is injected deterministically — no sleeps racing real load —
plus a real server behind a :class:`ChaosProxy` for the reconnect path.
"""

from __future__ import annotations

import asyncio
import random
import time
from contextlib import asynccontextmanager

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.errors import ReproError
from repro.server.client import (AmbiguousWriteError, CallTimeoutError,
                                 ReachabilityClient, RetryPolicy,
                                 ServerError)
from repro.server.protocol import (ProtocolError, encode_frame,
                                   error_response, ok_response, read_frame)
from repro.testing.netchaos import ChaosProxy

from .harness import run, serving


@asynccontextmanager
async def fake_server(handler):
    """A scripted peer on an ephemeral loopback port."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    sockname = server.sockets[0].getsockname()
    try:
        yield sockname[0], sockname[1]
    finally:
        server.close()
        await server.wait_closed()


async def _answer_frames(reader, writer):
    """Reply ``pong``/epoch-1 acks to every frame until EOF."""
    while True:
        frame = await read_frame(reader)
        if frame is None:
            return
        writer.write(encode_frame(ok_response(
            frame["id"], "pong", epoch=1)))
        await writer.drain()


class TestCallTimeout:
    def test_per_call_timeout_fires(self):
        async def silent(reader, writer):
            await reader.read()  # accept, read, never answer

        async def scenario():
            async with fake_server(silent) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port, call_timeout=0.05)
                try:
                    with pytest.raises(CallTimeoutError) as caught:
                        await client.ping()
                    assert caught.value.op == "ping"
                    assert caught.value.timeout == 0.05
                finally:
                    await client.close()
        run(scenario())

    def test_request_timeout_overrides_client_default(self):
        async def silent(reader, writer):
            await reader.read()

        async def scenario():
            async with fake_server(silent) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port, call_timeout=30.0)
                try:
                    started = time.monotonic()
                    with pytest.raises(CallTimeoutError):
                        await client.request("ping", timeout=0.05)
                    assert time.monotonic() - started < 5.0
                finally:
                    await client.close()
        run(scenario())

    def test_timed_out_slot_is_abandoned(self):
        """A late answer to a timed-out id must not corrupt later calls."""
        async def slow_then_fast(reader, writer):
            first = await read_frame(reader)
            second = await read_frame(reader)
            # Answer the *second* request first, then the stale one.
            writer.write(encode_frame(ok_response(
                second["id"], "second", epoch=1)))
            writer.write(encode_frame(ok_response(
                first["id"], "first", epoch=1)))
            await writer.drain()
            await _answer_frames(reader, writer)

        async def scenario():
            async with fake_server(slow_then_fast) as (host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    with pytest.raises(CallTimeoutError):
                        await client.request("ping", timeout=0.05)
                    assert await client.call("ping") == "second"
                finally:
                    await client.close()
        run(scenario())


class TestReconnect:
    def test_read_retries_across_a_mid_flight_reset(self):
        """Connection 0 dies after the request is sent; the retry layer
        reconnects and the (idempotent) read succeeds on connection 1."""
        conns = {"count": 0}

        async def flaky(reader, writer):
            index = conns["count"]
            conns["count"] += 1
            frame = await read_frame(reader)
            if frame is None:
                return
            if index == 0:
                writer.transport.abort()
                return
            writer.write(encode_frame(ok_response(
                frame["id"], "pong", epoch=1)))
            await writer.drain()
            await _answer_frames(reader, writer)

        async def scenario():
            async with fake_server(flaky) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port, call_timeout=5.0,
                    retry=RetryPolicy(attempts=3, base_delay=0.001,
                                      rng=random.Random(0)))
                try:
                    assert await client.ping() == "pong"
                    assert conns["count"] == 2
                finally:
                    await client.close()
        run(scenario())

    def test_reconnects_through_a_severed_proxy(self):
        engine = HybridTCIndex.from_arcs([("a", "b")])

        async def scenario():
            async with serving(engine) as (_, host, port):
                proxy = await ChaosProxy.create(host, port)
                client = await ReachabilityClient.connect(
                    proxy.host, proxy.port, call_timeout=5.0,
                    retry=RetryPolicy(attempts=5, base_delay=0.001,
                                      rng=random.Random(1)))
                try:
                    assert await client.check("a", "b") is True
                    proxy.sever_all()
                    # The next call finds the connection dead, redials
                    # through the proxy, and answers correctly.
                    assert await client.check("a", "b") is True
                    assert proxy.stats["connections"] >= 2
                finally:
                    await client.close()
                    await proxy.close()
        run(scenario())

    def test_explicit_close_is_final(self):
        async def scenario():
            async with fake_server(_answer_frames) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port,
                    retry=RetryPolicy(attempts=3, base_delay=0.001))
                assert await client.ping() == "pong"
                await client.close()
                with pytest.raises(ReproError):
                    await client.ping()
        run(scenario())

    def test_close_tolerates_a_dead_peer(self):
        async def abort_after_read(reader, writer):
            await read_frame(reader)
            writer.transport.abort()

        async def scenario():
            async with fake_server(abort_after_read) as (host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    await client.ping()
                except (ReproError, OSError):
                    pass
                started = time.monotonic()
                await client.close()  # must neither raise nor hang
                assert time.monotonic() - started < client.close_timeout
                await client.close()  # idempotent
        run(scenario())


class TestBackoff:
    def test_schedule_is_deterministic_under_a_seeded_rng(self):
        first = RetryPolicy(attempts=6, base_delay=0.05, max_delay=1.0,
                            rng=random.Random(42))
        second = RetryPolicy(attempts=6, base_delay=0.05, max_delay=1.0,
                             rng=random.Random(42))
        schedule = [first.delay(k) for k in range(6)]
        assert schedule == [second.delay(k) for k in range(6)]

    def test_delay_is_capped_exponential_with_downward_jitter(self):
        policy = RetryPolicy(attempts=8, base_delay=0.1, max_delay=0.4,
                             multiplier=2.0, jitter=0.5,
                             rng=random.Random(7))
        for attempt in range(8):
            raw = min(0.4, 0.1 * 2.0 ** attempt)
            delay = policy.delay(attempt)
            assert 0.5 * raw <= delay <= raw

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(attempts=5, base_delay=0.05, max_delay=2.0,
                             multiplier=2.0, jitter=0.0)
        assert [policy.delay(k) for k in range(5)] == \
            [0.05, 0.1, 0.2, 0.4, 0.8]

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)

    def test_overloaded_retry_honours_the_server_hint(self):
        """An ``overloaded`` response's retry_after_ms floors the delay."""
        calls = {"count": 0}

        async def overload_once(reader, writer):
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                calls["count"] += 1
                if calls["count"] == 1:
                    writer.write(encode_frame(error_response(
                        frame["id"], "overloaded", "busy",
                        retry_after_ms=80)))
                else:
                    writer.write(encode_frame(ok_response(
                        frame["id"], "pong", epoch=1)))
                await writer.drain()

        async def scenario():
            async with fake_server(overload_once) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port,
                    retry=RetryPolicy(attempts=3, base_delay=0.001,
                                      jitter=0.0))
                try:
                    started = time.monotonic()
                    assert await client.ping() == "pong"
                    assert time.monotonic() - started >= 0.07
                    assert calls["count"] == 2
                finally:
                    await client.close()
        run(scenario())


class TestWriteRetrySafety:
    def test_not_applied_codes_classify_as_safe(self):
        for code in ("overloaded", "deadline-exceeded", "shutting-down",
                     "read-only"):
            assert ReachabilityClient.write_retry_safe(
                ServerError(code, "refused"))
            assert ReachabilityClient.write_retry_safe(
                ProtocolError(code, "refused"))

    def test_everything_else_classifies_as_unsafe(self):
        unsafe = [
            ServerError("cycle", "would create a cycle"),
            ServerError("bad-request", "nonsense"),
            AmbiguousWriteError("add-arc", ConnectionResetError()),
            ConnectionResetError("peer vanished"),
            CallTimeoutError("add-arc", 1.0),
        ]
        for error in unsafe:
            assert not ReachabilityClient.write_retry_safe(error)

    def test_write_sent_then_reset_raises_ambiguous(self):
        """A write that hit the wire and lost its connection must NOT be
        auto-retried: the server may have applied it."""
        async def abort_after_read(reader, writer):
            await read_frame(reader)
            writer.transport.abort()

        async def scenario():
            async with fake_server(abort_after_read) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port, call_timeout=5.0,
                    retry=RetryPolicy(attempts=5, base_delay=0.001))
                try:
                    with pytest.raises(AmbiguousWriteError) as caught:
                        await client.add_arc("a", "b")
                    assert caught.value.op == "add-arc"
                finally:
                    await client.close()
        run(scenario())

    def test_structured_overload_refusal_of_a_write_is_retried(self):
        """``overloaded`` means not-applied, so the retry layer may (and
        does) resubmit the write itself."""
        calls = {"count": 0}

        async def shed_once(reader, writer):
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                calls["count"] += 1
                if calls["count"] == 1:
                    writer.write(encode_frame(error_response(
                        frame["id"], "overloaded", "write queue full",
                        retry_after_ms=5)))
                else:
                    writer.write(encode_frame(ok_response(
                        frame["id"], True, epoch=9)))
                await writer.drain()

        async def scenario():
            async with fake_server(shed_once) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port,
                    retry=RetryPolicy(attempts=3, base_delay=0.001,
                                      jitter=0.0))
                try:
                    assert await client.add_arc("a", "b") == 9
                    assert calls["count"] == 2
                finally:
                    await client.close()
        run(scenario())

    def test_write_timeout_is_ambiguous_not_retried(self):
        async def silent(reader, writer):
            await reader.read()

        async def scenario():
            async with fake_server(silent) as (host, port):
                client = await ReachabilityClient.connect(
                    host, port, call_timeout=0.05,
                    retry=RetryPolicy(attempts=4, base_delay=0.001))
                try:
                    with pytest.raises(AmbiguousWriteError):
                        await client.add_arc("a", "b")
                finally:
                    await client.close()
        run(scenario())
