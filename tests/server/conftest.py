"""Fixtures for the server battery."""

from __future__ import annotations

import pytest


@pytest.fixture
def paper_arcs(paper_dag):
    return sorted(paper_dag.arcs(), key=repr)
