"""Wire-format units plus the malformed-frame battery.

The invariant under attack: no byte sequence a client can send may kill
the serving loop.  Recoverable garbage (bad JSON, wrong shapes, unknown
ops) draws a structured error on a connection that stays usable;
unframeable streams (oversized declared lengths) draw an error and a
close — and in every case the *server* survives to answer the next
connection.
"""

from __future__ import annotations

import asyncio
import json
import random
import struct

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.server.protocol import (DEFAULT_MAX_FRAME, ERROR_CODES,
                                   CannedError, FrameParser, ProtocolError,
                                   decode_payload, encode_frame,
                                   encode_response, error_response,
                                   looks_like_http)

from .harness import http_exchange, next_response, run, serving


class TestCannedError:
    """The pre-serialised shed frame must be indistinguishable on the
    wire from the dict-built one — splicing only the id in must not
    change a byte."""

    def test_byte_identical_to_encode_response(self):
        canned = CannedError("overloaded", "budget gone",
                             retry_after_ms=25)
        for request_id in (0, 17, -3, None, "req-9", "unié",
                           1.5, ["a", 2], {"k": [1, None]}):
            expected = encode_response(error_response(
                request_id, "overloaded", "budget gone",
                retry_after_ms=25))
            assert canned.frame(request_id) == expected

    def test_without_retry_hint(self):
        canned = CannedError("shutting-down", "going away")
        expected = encode_response(error_response(
            None, "shutting-down", "going away"))
        assert canned.frame(None) == expected


class TestFrameParser:
    def test_single_frame_roundtrip(self):
        parser = FrameParser()
        frame = encode_frame({"op": "ping", "id": 1})
        bodies = parser.feed(frame)
        assert len(bodies) == 1
        assert decode_payload(bodies[0]) == {"op": "ping", "id": 1}
        assert parser.pending_bytes == 0

    def test_byte_at_a_time_reassembly(self):
        parser = FrameParser()
        frame = encode_frame({"op": "ping", "id": 42})
        bodies = []
        for i in range(len(frame)):
            bodies.extend(parser.feed(frame[i:i + 1]))
        assert len(bodies) == 1
        assert decode_payload(bodies[0])["id"] == 42

    def test_many_frames_in_one_chunk(self):
        frames = b"".join(encode_frame({"id": i, "op": "ping"})
                          for i in range(10))
        bodies = FrameParser().feed(frames)
        assert [decode_payload(b)["id"] for b in bodies] == list(range(10))

    def test_partial_tail_is_buffered(self):
        parser = FrameParser()
        one = encode_frame({"id": 1, "op": "ping"})
        two = encode_frame({"id": 2, "op": "ping"})
        bodies = parser.feed(one + two[:3])
        assert len(bodies) == 1
        assert parser.pending_bytes == 3
        bodies = parser.feed(two[3:])
        assert decode_payload(bodies[0])["id"] == 2

    def test_oversized_declared_length_refused_cheaply(self):
        parser = FrameParser(max_frame=1024)
        with pytest.raises(ProtocolError) as excinfo:
            parser.feed(struct.pack(">I", 1 << 31))
        assert excinfo.value.code == "too-large"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_payload(b"[1,2,3]")
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ProtocolError) as excinfo:
            decode_payload(b"{not json")
        assert excinfo.value.code == "bad-json"

    def test_http_sniff(self):
        assert looks_like_http(b"GET ")
        assert looks_like_http(b"POST")
        assert looks_like_http(b"PU")  # prefix of "PUT "
        assert not looks_like_http(b"\x00\x00\x00\x10")
        assert not looks_like_http(b"")
        # A framed length prefix can never collide with a method: every
        # method spelling read as a big-endian length is over a gigabyte.
        for method in (b"GET ", b"POST", b"HEAD", b"PUT "):
            (as_length,) = struct.unpack(">I", method)
            assert as_length > DEFAULT_MAX_FRAME


def _small_engine():
    return HybridTCIndex.from_arcs([("a", "b"), ("b", "c")])


class TestMalformedFrames:
    """Each poisoned input draws a structured error, never a dead loop."""

    def test_invalid_json_then_connection_still_works(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                garbage = b"{definitely not json"
                writer.write(struct.pack(">I", len(garbage)) + garbage)
                await writer.drain()
                response = await next_response(reader)
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-json"
                # Same connection keeps serving.
                writer.write(encode_frame(
                    {"id": 9, "op": "check", "u": "a", "v": "c"}))
                await writer.drain()
                response = await next_response(reader)
                assert response == {"id": 9, "ok": True, "result": True,
                                    "epoch": 0}
                writer.close()
        run(scenario())

    def test_non_object_payload(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                body = json.dumps([1, 2, 3]).encode()
                writer.write(struct.pack(">I", len(body)) + body)
                await writer.drain()
                response = await next_response(reader)
                assert response["error"]["code"] == "bad-request"
                writer.close()
        run(scenario())

    def test_unknown_op(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({"id": 1, "op": "frobnicate"}))
                await writer.drain()
                response = await next_response(reader)
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown-op"
                assert response["id"] == 1
                writer.close()
        run(scenario())

    def test_missing_fields(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({"id": 2, "op": "check", "u": "a"}))
                await writer.drain()
                response = await next_response(reader)
                assert response["error"]["code"] == "bad-request"
                assert "v" in response["error"]["message"]
                writer.close()
        run(scenario())

    def test_mistyped_fields(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    {"id": 3, "op": "check-many", "pairs": "not-a-list"}))
                writer.write(encode_frame(
                    {"id": 4, "op": "check-many", "pairs": [["a"]]}))
                writer.write(encode_frame(
                    {"id": 5, "op": "semijoin", "mode": "sideways",
                     "sources": [], "destinations": []}))
                await writer.drain()
                for expected_id in (3, 4, 5):
                    response = await next_response(reader)
                    assert response["id"] == expected_id
                    assert response["error"]["code"] == "bad-request"
                writer.close()
        run(scenario())

    def test_unhashable_node_values_draw_bad_request(self):
        """JSON arrays/objects as node ids are rejected at parse time.

        Regression: an unhashable ``u`` used to raise ``TypeError``
        inside the coalescer drain, silently dropping every group in
        the batch — including other connections' — and hanging their
        response sequencers.
        """
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                # One chunk: poisoned check, healthy check, poisoned
                # check-many — the healthy one must still be answered.
                writer.write(encode_frame(
                    {"id": 1, "op": "check", "u": [1], "v": "a"}))
                writer.write(encode_frame(
                    {"id": 2, "op": "check", "u": "a", "v": "c"}))
                writer.write(encode_frame(
                    {"id": 3, "op": "check-many",
                     "pairs": [["a", {"v": "c"}]]}))
                await writer.drain()
                response = await next_response(reader)
                assert response["id"] == 1
                assert response["error"]["code"] == "bad-request"
                response = await next_response(reader)
                assert response == {"id": 2, "ok": True, "result": True,
                                    "epoch": 0}
                response = await next_response(reader)
                assert response["id"] == 3
                assert response["error"]["code"] == "bad-request"
                # Mutation and semijoin ops reject the same way.
                for request in (
                        {"id": 4, "op": "expand", "u": ["a"]},
                        {"id": 5, "op": "add-arc", "u": {"n": 1}, "v": "a"},
                        {"id": 6, "op": "semijoin", "mode": "any",
                         "sources": [["a"]], "destinations": ["c"]}):
                    writer.write(encode_frame(request))
                await writer.drain()
                for expected_id in (4, 5, 6):
                    response = await next_response(reader)
                    assert response["id"] == expected_id
                    assert response["error"]["code"] == "bad-request"
                writer.close()
        run(scenario())

    def test_oversized_declared_length_answers_then_closes(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(struct.pack(">I", 0xFFFFFFFF) + b"xxxx")
                await writer.drain()
                response = await next_response(reader)
                assert response["error"]["code"] == "too-large"
                # The stream cannot be re-framed; the server closes it.
                assert await asyncio.wait_for(reader.read(), 5.0) == b""
                # But the *server* is alive: a new connection works.
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"id": 1, "op": "ping"}))
                await writer2.drain()
                assert (await next_response(reader2))["result"] == "pong"
                writer2.close()
        run(scenario())

    def test_truncated_prefix_then_eof_is_quiet(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"\x00\x00")  # half a length prefix
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # Server drops the partial quietly and keeps serving.
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"id": 1, "op": "ping"}))
                await writer2.drain()
                assert (await next_response(reader2))["result"] == "pong"
                writer2.close()
        run(scenario())

    def test_truncated_body_then_eof_is_quiet(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                frame = encode_frame({"id": 1, "op": "ping"})
                writer.write(frame[:-4])  # declared body never finishes
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"id": 2, "op": "ping"}))
                await writer2.drain()
                assert (await next_response(reader2))["result"] == "pong"
                writer2.close()
        run(scenario())

    def test_random_garbage_never_kills_the_server(self):
        """Seeded byte soup: every connection may die; the server may not."""
        rng = random.Random(1989)

        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                for _ in range(25):
                    blob = bytes(rng.randrange(256)
                                 for _ in range(rng.randrange(1, 64)))
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(blob)
                    await writer.drain()
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                    del reader
                # Still standing.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({"id": 1, "op": "ping"}))
                await writer.drain()
                assert (await next_response(reader))["result"] == "pong"
                writer.close()
        run(scenario())

    def test_error_codes_are_closed_set(self):
        """Every code the dispatcher can emit is documented."""
        assert set(ERROR_CODES) == {
            "bad-json", "bad-request", "cycle", "deadline-exceeded",
            "not-found", "overloaded", "read-only", "server-error",
            "shutting-down", "too-large", "unknown-op"}


class TestHttpMode:
    def test_healthz(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                raw = await http_exchange(
                    host, port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                head, _, body = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                payload = json.loads(body)
                assert payload["ok"] is True
                assert payload["epoch"] == 0
                assert payload["nodes"] == 3
        run(scenario())

    def test_metrics_prometheus_text(self):
        async def scenario():
            async with serving(_small_engine()) as (server, host, port):
                # Generate some traffic so counters exist.
                raw = await http_exchange(
                    host, port,
                    b"GET /check?u=a&v=c HTTP/1.1\r\nHost: t\r\n\r\n")
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["result"] \
                    is True
                raw = await http_exchange(
                    host, port, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                head, _, body = raw.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                text = body.decode()
                assert "tc_server_requests_total" in text
                assert "tc_server_epoch" in text
        run(scenario())

    def test_get_query_routes(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                raw = await http_exchange(
                    host, port,
                    b"GET /expand?u=a HTTP/1.1\r\nHost: t\r\n\r\n")
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["result"] \
                    == ["a", "b", "c"]
                raw = await http_exchange(
                    host, port,
                    b"GET /reaching?v=c HTTP/1.1\r\nHost: t\r\n\r\n")
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["result"] \
                    == ["a", "b", "c"]
        run(scenario())

    def test_post_query_dispatches_any_op(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                body = json.dumps({"op": "check-many",
                                   "pairs": [["a", "c"], ["c", "a"]]}
                                  ).encode()
                request = (b"POST /query HTTP/1.1\r\nHost: t\r\n"
                           b"Content-Length: " + str(len(body)).encode()
                           + b"\r\n\r\n" + body)
                raw = await http_exchange(host, port, request)
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["result"] \
                    == [True, False]
        run(scenario())

    def test_unknown_route_is_404(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                raw = await http_exchange(
                    host, port, b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
                assert raw.startswith(b"HTTP/1.1 404")
        run(scenario())

    def test_oversized_content_length_is_413(self):
        """A huge declared body is refused up front, never buffered."""
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                raw = await http_exchange(
                    host, port,
                    b"POST /query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 4294967296\r\n\r\n")
                assert raw.startswith(b"HTTP/1.1 413")
        run(scenario())

    def test_bad_content_length_is_400(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                for value in (b"banana", b"-5"):
                    raw = await http_exchange(
                        host, port,
                        b"POST /query HTTP/1.1\r\nHost: t\r\n"
                        b"Content-Length: " + value + b"\r\n\r\n")
                    assert raw.startswith(b"HTTP/1.1 400")
        run(scenario())

    def test_bad_query_params_are_400(self):
        async def scenario():
            async with serving(_small_engine()) as (_, host, port):
                raw = await http_exchange(
                    host, port, b"GET /check?u=a HTTP/1.1\r\nHost: t\r\n\r\n")
                assert raw.startswith(b"HTTP/1.1 400")
                raw = await http_exchange(
                    host, port,
                    b"GET /check?u=a&v=zz HTTP/1.1\r\nHost: t\r\n\r\n")
                assert raw.startswith(b"HTTP/1.1 400")
                assert b"not-found" in raw
        run(scenario())
