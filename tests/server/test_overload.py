"""Overload protection: deadlines, admission control, slow clients.

Shedding decisions happen at deterministic points (admission at parse,
write-queue check before enqueue, deadline checks before dispatch and
again at encode), so these tests drive them without load generators:
a burst of frames in one chunk, a write queue the writer has not yet
drained, a deadline budget of a fraction of a microsecond.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.obs.metrics import MetricsRegistry
from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient, ServerError
from repro.server.protocol import (OverloadedError, encode_frame,
                                   read_frame)
from repro.server.state import ServeState

from .harness import http_exchange, run, serving


def _engine():
    engine = HybridTCIndex.from_arcs([("a", "b"), ("b", "c")])
    engine.add_node("x")
    return engine


class TestAdmissionControl:
    def test_burst_beyond_budget_is_shed_with_retry_hint(self):
        """Six checks arrive in one chunk against a budget of one: the
        first is admitted, the rest draw ``overloaded`` immediately —
        before any engine work — each carrying the configured hint."""
        async def scenario():
            async with serving(_engine(), max_inflight=1,
                               shed_retry_after_ms=33) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                frames = [encode_frame({"id": index, "op": "check",
                                        "u": "a", "v": "c"})
                          for index in range(6)]
                writer.write(b"".join(frames))
                await writer.drain()
                responses = [await read_frame(reader) for _ in range(6)]
                writer.close()

                by_id = {response["id"]: response
                         for response in responses}
                assert by_id[0]["ok"] and by_id[0]["result"] is True
                for index in range(1, 6):
                    error = by_id[index]["error"]
                    assert error["code"] == "overloaded"
                    assert error["retry_after_ms"] == 33
        run(scenario())

    def test_budget_frees_after_completion(self):
        """Shedding is about concurrency, not rate: once the burst is
        answered the budget is whole again."""
        async def scenario():
            async with serving(_engine(),
                               max_inflight=1) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    for _ in range(5):  # sequential: never over budget
                        assert await client.check("a", "c") is True
                finally:
                    await client.close()
        run(scenario())

    def test_healthz_reports_the_overload_section(self):
        async def scenario():
            async with serving(_engine(), max_inflight=3,
                               shed_retry_after_ms=20) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                frames = [encode_frame({"id": index, "op": "check",
                                        "u": "a", "v": "b"})
                          for index in range(6)]
                writer.write(b"".join(frames))
                await writer.drain()
                for _ in range(6):
                    await read_frame(reader)
                writer.close()

                raw = await http_exchange(
                    host, port, b"GET /healthz HTTP/1.1\r\n\r\n")
                body = raw.split(b"\r\n\r\n", 1)[1]
                overload = json.loads(body)["overload"]
                assert overload["max_inflight"] == 3
                assert overload["inflight"] == 0
                assert overload["shed_total"] == 3
                assert overload["slow_client_aborts_total"] == 0
        run(scenario())

    def test_disabled_budget_admits_everything(self):
        async def scenario():
            async with serving(_engine()) as (server, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                frames = [encode_frame({"id": index, "op": "check",
                                        "u": "a", "v": "c"})
                          for index in range(64)]
                writer.write(b"".join(frames))
                await writer.drain()
                for index in range(64):
                    response = await read_frame(reader)
                    assert response["ok"]
                writer.close()
                assert server._shed.value == 0
        run(scenario())


class TestWriteQueueCap:
    def test_full_queue_sheds_before_enqueue(self):
        async def scenario():
            state = ServeState(HybridTCIndex.from_arcs([("a", "b")]),
                               metrics=MetricsRegistry(),
                               max_pending_writes=1)
            state.start()
            first = asyncio.get_running_loop().create_task(
                state.submit("add-node", ("c", ["b"])))
            await asyncio.sleep(0)  # first submit enqueues; writer not run
            assert state._queue.qsize() == 1
            with pytest.raises(OverloadedError) as caught:
                await state.submit("add-node", ("d", ["b"]))
            assert "not applied" in str(caught.value)
            assert state._writes_shed.value == 1
            # The queued write is untouched by the shed and still lands.
            assert await first == 1
            assert "c" in state.snapshot.engine
            assert "d" not in state.snapshot.engine
            await state.stop()
        run(scenario())

    def test_stats_surface_the_cap(self):
        async def scenario():
            async with serving(_engine(), max_pending_writes=7) \
                    as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    stats = await client.stats()
                    assert stats["max_pending_writes"] == 7
                finally:
                    await client.close()
        run(scenario())


class TestDeadlines:
    def test_expired_check_deadline_draws_deadline_exceeded(self):
        async def scenario():
            async with serving(_engine()) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    # A budget of 1 nanosecond is gone before the
                    # coalescer drain can possibly run.
                    response = await client.request(
                        "check", u="a", v="c", deadline_ms=1e-6)
                    assert response["error"]["code"] == "deadline-exceeded"
                    with pytest.raises(ServerError) as caught:
                        await client.check_many([("a", "b"), ("a", "c")],
                                                deadline_ms=1e-6)
                    assert caught.value.code == "deadline-exceeded"
                finally:
                    await client.close()
        run(scenario())

    def test_generous_deadline_answers_normally(self):
        async def scenario():
            async with serving(_engine()) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    assert await client.check(
                        "a", "c", deadline_ms=60000) is True
                    assert await client.check_many(
                        [("a", "b"), ("b", "a")],
                        deadline_ms=60000) == [True, False]
                finally:
                    await client.close()
        run(scenario())

    def test_expired_write_deadline_means_not_applied(self):
        async def scenario():
            async with serving(_engine()) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    response = await client.request(
                        "add-arc", u="c", v="x", deadline_ms=1e-6)
                    assert response["error"]["code"] == "deadline-exceeded"
                    assert await client.check("c", "x") is False
                    # Same write, sane budget: applied.
                    response = await client.request(
                        "add-arc", u="c", v="x", deadline_ms=60000)
                    assert response["ok"]
                    assert await client.check("c", "x") is True
                finally:
                    await client.close()
        run(scenario())

    def test_malformed_deadline_is_bad_request(self):
        async def scenario():
            async with serving(_engine()) as (_, host, port):
                client = await ReachabilityClient.connect(host, port)
                try:
                    for bad in (0, -5, "soon", True, [100]):
                        response = await client.request(
                            "ping", deadline_ms=bad)
                        assert response["error"]["code"] == "bad-request"
                    # Malformed deadlines never take an admission slot.
                    raw = await http_exchange(
                        host, port, b"GET /healthz HTTP/1.1\r\n\r\n")
                    body = raw.split(b"\r\n\r\n", 1)[1]
                    assert json.loads(body)["overload"]["inflight"] == 0
                finally:
                    await client.close()
        run(scenario())

    def test_http_query_honours_deadlines(self):
        async def scenario():
            async with serving(_engine()) as (_, host, port):
                payload = json.dumps({"op": "check-many",
                                      "pairs": [["a", "c"]],
                                      "deadline_ms": 1e-6}).encode()
                request = (b"POST /query HTTP/1.1\r\n"
                           b"Content-Length: %d\r\n\r\n" % len(payload)
                           ) + payload
                raw = await http_exchange(host, port, request)
                assert raw.startswith(b"HTTP/1.1 400")
                body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
                assert body["error"]["code"] == "deadline-exceeded"
        run(scenario())


class _HungWriter:
    """A writer whose drain never completes — a reader that stopped."""

    class _Transport:
        def __init__(self):
            self.aborted = False

        def abort(self):
            self.aborted = True

    def __init__(self):
        self.transport = self._Transport()

    async def drain(self):
        await asyncio.sleep(3600)


class TestSlowClients:
    def test_guarded_drain_aborts_past_grace(self):
        async def scenario():
            server = ReachabilityServer(_engine(), write_high_water=1024,
                                        write_grace=0.05)
            writer = _HungWriter()
            assert await server._guarded_drain(writer) is False
            assert writer.transport.aborted
            assert server._slow_aborts.value == 1
        run(scenario())

    def test_guarded_drain_is_plain_when_disabled(self):
        async def scenario():
            server = ReachabilityServer(_engine())  # write_high_water=0
            class _Fine:
                transport = None

                async def drain(self):
                    return None

            assert await server._guarded_drain(_Fine()) is True
            assert server._slow_aborts.value == 0
        run(scenario())
