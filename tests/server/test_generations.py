"""Generation rotation: publish/attach, GC, mmap pinning, torn publishes.

The cluster's correctness rests on three filesystem facts this battery
pins down: a reader following ``CURRENT`` always lands on a complete
RTCF file; unlinking a generation a reader still maps never invalidates
its pages; and a crash anywhere inside a publish leaves the *previous*
generation serving.
"""

from __future__ import annotations

import os

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.errors import ReproError, SimulatedCrash
from repro.server.generations import (CURRENT_NAME, GenerationStore,
                                      generation_name, parse_generation)
from repro.testing.faults import FaultyFS

ARCS_V0 = [("a", "b"), ("b", "c")]
ARCS_V1 = [("a", "b"), ("b", "c"), ("c", "d")]


def _frozen(arcs):
    return HybridTCIndex.from_arcs(arcs).snapshot()


def test_generation_names_round_trip():
    assert generation_name(17) == "gen-17.rtcf"
    assert parse_generation("gen-17.rtcf") == 17
    assert parse_generation("gen-x.rtcf") is None
    assert parse_generation("checkpoint-3.rtcf") is None


def test_publish_then_attach_round_trip(tmp_path):
    store = GenerationStore(tmp_path)
    name = store.publish(_frozen(ARCS_V0), 0)
    assert name == "gen-0.rtcf"
    assert store.current() == (0, "gen-0.rtcf")
    epoch, attached_name, view = store.attach()
    assert (epoch, attached_name) == (0, "gen-0.rtcf")
    assert bool(view.reachable("a", "c")) is True
    assert bool(view.reachable("c", "a")) is False


def test_attach_without_any_generation_is_a_clear_error(tmp_path):
    store = GenerationStore(tmp_path)
    with pytest.raises(ReproError):
        store.attach()


def test_epoch_comes_from_the_filename(tmp_path):
    """Serve epochs count publishes, not the index's header epoch."""
    store = GenerationStore(tmp_path)
    store.publish(_frozen(ARCS_V0), 7)
    epoch, name, _ = store.attach()
    assert (epoch, name) == (7, "gen-7.rtcf")


def test_rotation_keeps_newest_generations(tmp_path):
    store = GenerationStore(tmp_path, keep=2)
    for epoch in range(5):
        store.publish(_frozen(ARCS_V0 if epoch % 2 else ARCS_V1), epoch)
    assert [name for _, name in store.generations()] == \
        ["gen-3.rtcf", "gen-4.rtcf"]
    assert store.current() == (4, "gen-4.rtcf")
    assert not (tmp_path / "gen-0.rtcf").exists()


def test_old_mmap_survives_garbage_collection(tmp_path):
    """A reader attached to a swept generation keeps answering.

    POSIX keeps an unlinked file's pages alive while mapped, so the
    writer's GC never has to wait for readers — exactly what lets
    workers re-attach at their own pace mid-query.
    """
    store = GenerationStore(tmp_path, keep=1)
    store.publish(_frozen(ARCS_V0), 0)
    _, _, old_view = store.attach()
    for epoch in range(1, 4):
        store.publish(_frozen(ARCS_V1), epoch)
    assert not (tmp_path / "gen-0.rtcf").exists()  # really unlinked
    # The in-flight reader still answers from the unlinked epoch-0 file.
    assert old_view.reachable("a", "c")
    assert "d" not in old_view
    # A fresh attach sees the new world.
    _, _, new_view = store.attach()
    assert new_view.reachable("a", "d")


def test_current_is_never_garbage_collected(tmp_path):
    store = GenerationStore(tmp_path, keep=1)
    store.publish(_frozen(ARCS_V0), 0)
    store.publish(_frozen(ARCS_V1), 1)
    removed = store.collect_garbage()
    assert "gen-1.rtcf" not in removed
    assert store.attach()[0] == 1


class TestTornPublish:
    def test_crash_before_current_rename_keeps_old_generation(self, tmp_path):
        """The ISSUE's torn-publish case: gen file written, CURRENT not
        yet swung.  Readers must keep serving the previous generation."""
        GenerationStore(tmp_path).publish(_frozen(ARCS_V0), 1)
        faulty = FaultyFS(crash_at="current.pre-rename")
        torn = GenerationStore(tmp_path, fs=faulty)
        with pytest.raises(SimulatedCrash):
            torn.publish(_frozen(ARCS_V1), 2)
        # Recovery view: a process re-opening the store after the crash.
        store = GenerationStore(tmp_path)
        assert store.current() == (1, "gen-1.rtcf")
        epoch, _, view = store.attach()
        assert epoch == 1
        assert "d" not in view  # the torn epoch-2 state is invisible

    def test_crash_during_generation_write_keeps_old_generation(
            self, tmp_path):
        faulty = FaultyFS(crash_at="rtcf.pre-rename")
        GenerationStore(tmp_path).publish(_frozen(ARCS_V0), 1)
        with pytest.raises(SimulatedCrash):
            GenerationStore(tmp_path, fs=faulty).publish(_frozen(ARCS_V1), 2)
        store = GenerationStore(tmp_path)
        assert not (tmp_path / "gen-2.rtcf").exists()
        assert store.current() == (1, "gen-1.rtcf")
        assert store.attach()[0] == 1

    def test_next_publish_sweeps_torn_leftovers(self, tmp_path):
        GenerationStore(tmp_path).publish(_frozen(ARCS_V0), 1)
        faulty = FaultyFS(crash_at="current.pre-rename")
        with pytest.raises(SimulatedCrash):
            GenerationStore(tmp_path, fs=faulty).publish(_frozen(ARCS_V1), 2)
        store = GenerationStore(tmp_path)
        store.publish(_frozen(ARCS_V1), 3)
        assert store.current() == (3, "gen-3.rtcf")
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []
        # And the store is fully healthy again.
        assert store.attach()[2].reachable("a", "d")

    def test_corrupt_current_pointer_is_a_structured_error(self, tmp_path):
        from repro.errors import CorruptFileError
        store = GenerationStore(tmp_path)
        store.publish(_frozen(ARCS_V0), 0)
        (tmp_path / CURRENT_NAME).write_text("not-a-generation\n")
        with pytest.raises(CorruptFileError):
            store.current()
