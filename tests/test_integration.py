"""Cross-subsystem integration scenarios.

Each test wires several layers together the way a real deployment would:
graph generators feed indexes, indexes feed paged/disk storage, the KB
layers sit on the taxonomy, the algebra queries the relations, and
everything round-trips through persistence.
"""

import random

import pytest

from repro.core.batch import apply_diff
from repro.core.bidirectional import BidirectionalTCIndex
from repro.core.condensation import CondensedIndex
from repro.core.index import IntervalTCIndex
from repro.core.serialize import save_index
from repro.factory import open_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_hierarchy
from repro.kb import ABox, Classifier, InheritanceEngine, Taxonomy
from repro.storage import (
    Alpha,
    BinaryRelation,
    ClosureDatabase,
    Compose,
    MaterializedClosureView,
    Rel,
)
from repro.storage.diskindex import DiskIntervalIndex, write_index
from repro.storage.pager import BufferPool


class TestIndexLifecycle:
    """Build -> update -> persist -> reload -> update -> disk-serve."""

    def test_full_lifecycle(self, tmp_path):
        rng = random.Random(42)
        # String labels throughout: JSON persistence does not preserve
        # tuple/int label types (documented in repro.core.serialize).
        base = random_hierarchy(120, rng=7)
        graph = DiGraph(
            nodes=(f"n{node}" for node in base.nodes()),
            arcs=((f"n{s}", f"n{d}") for s, d in base.arcs()),
        )
        index = IntervalTCIndex.build(graph, gap=32)

        # A burst of online updates.
        for step in range(40):
            nodes = list(index.nodes())
            index.add_node(f"online{step}", parents=[rng.choice(nodes)])
        index.remove_node("online0")

        # Persist as JSON, reload, keep updating.
        json_path = tmp_path / "lifecycle.json"
        save_index(index, json_path)
        reloaded = open_index(json_path, engine="interval")
        first_arc = next(iter(reloaded.graph.arcs()))
        apply_diff(reloaded,
                   f"+ n3 late-arrival\n- {first_arc[0]} {first_arc[1]}\n")
        reloaded.check_invariants()
        reloaded.verify()

        # Freeze to the binary format and serve queries through a pool.
        rtcx_path = tmp_path / "lifecycle.rtcx"
        write_index(reloaded, rtcx_path)
        pool = BufferPool(8)
        with DiskIntervalIndex.open(rtcx_path, pool=pool) as disk:
            for node in list(reloaded.nodes())[:30]:
                assert disk.successors(node) == reloaded.successors(node)
        assert pool.counters.logical_reads > 0


class TestKnowledgeBaseStack:
    """Classifier + taxonomy + ABox + inheritance on one index."""

    def test_classified_kb_with_instances(self):
        classifier = Classifier()
        classifier.define("vehicle", features=["moves"])
        classifier.define("motorized", features=["moves", "engine"])
        classifier.define("car", features=["moves", "engine", "four-wheels"])
        classifier.define("bicycle", features=["moves", "pedals"])

        taxonomy = classifier.taxonomy
        box = ABox(taxonomy)
        box.assert_instance("herbie", "car")
        box.assert_instance("roadster", "bicycle")

        # Instance retrieval follows the *inferred* hierarchy.
        assert box.instances_of("vehicle") == {"herbie", "roadster"}
        assert box.instances_of("motorized") == {"herbie"}

        engine = InheritanceEngine(taxonomy)
        engine.set_property("vehicle", "taxed", False)
        engine.set_property("motorized", "taxed", True)
        assert engine.effective_property("car", "taxed") is True
        assert engine.effective_property("bicycle", "taxed") is False

        # Logical deletion hides a branch without touching the closure.
        taxonomy.ignore("motorized")
        assert box.instances_of("vehicle") == {"herbie", "roadster"}
        assert "motorized" not in taxonomy.superconcepts("car")
        taxonomy.restore("motorized")
        classifier.check_lattice_consistency()


class TestDatabaseStack:
    """Relations + views + algebra + condensation in one flow."""

    def test_supply_chain(self, tmp_path):
        db = ClosureDatabase()
        db.create_relation("supplies", materialize=True, tuples=[
            ("mine", "smelter"), ("smelter", "mill"), ("mill", "factory"),
            ("factory", "dealer"),
        ])
        db.create_relation("owns", tuples=[
            ("conglomerate", "mine"), ("conglomerate", "mill"),
        ])

        # Materialised view answers chains instantly.
        assert db.closure("supplies").query("mine", "dealer")

        # Cross-relation algebra: who transitively feeds what the
        # conglomerate owns?  owns . inverse would be cyclic-free here;
        # compose ownership with supply closure.
        fed_by_owned = db.evaluate(Compose(Rel("owns"), Alpha(Rel("supplies"))))
        assert ("conglomerate", "dealer") in fed_by_owned

        # Persistence round trip preserves both data and views.
        db.insert("supplies", "dealer", "customer")
        db.save(tmp_path / "supply")
        restored = ClosureDatabase.load(tmp_path / "supply")
        assert restored.closure("supplies").query("mine", "customer")

    def test_cyclic_relation_through_condensation(self):
        # A relation with a feedback loop cannot feed IntervalTCIndex
        # directly; CondensedIndex handles it.
        relation = BinaryRelation([
            ("a", "b"), ("b", "c"), ("c", "a"),  # cycle
            ("c", "d"),
        ])
        index = CondensedIndex.build(relation.to_graph())
        assert index.reachable("a", "d")
        assert index.reachable("b", "a")
        assert not index.reachable("d", "a")


class TestViewVersusAlgebra:
    """The materialised view and the algebra must agree tuple-for-tuple."""

    def test_agreement_under_updates(self):
        rng = random.Random(9)
        view = MaterializedClosureView.over(BinaryRelation(), gap=16)
        values = [f"v{i}" for i in range(12)]
        for _ in range(40):
            a, b = rng.sample(values, 2)
            if view.query(b, a):
                continue  # would close a cycle; the view refuses
            view.insert(a, b)
        # Algebra computes the closure from scratch; the view maintained
        # it incrementally.  Same relation, same answer set.
        from repro.storage.algebra import AlgebraEngine
        engine = AlgebraEngine({"r": view.relation})
        closure = engine.evaluate(Alpha(Rel("r")))
        for a in view.relation.domain():
            for b in view.relation.domain():
                assert ((a, b) in closure) == view.query(a, b), (a, b)


class TestBidirectionalOverDatabaseGraph:
    def test_where_used_on_bom(self):
        relation = BinaryRelation([
            ("assembly", "sub1"), ("assembly", "sub2"),
            ("sub1", "bolt"), ("sub2", "bolt"), ("sub2", "nut"),
        ])
        index = BidirectionalTCIndex.build(relation.to_graph())
        assert index.predecessors("bolt", reflexive=False) == \
            {"assembly", "sub1", "sub2"}
        index.add_node("washer", parents=["sub1"])
        assert "assembly" in index.predecessors("washer")
        index.verify()


class TestDeterminismAcrossLayers:
    def test_same_input_same_artifacts(self, tmp_path):
        """Two independent builds produce byte-identical persisted output."""
        def build_bytes(tag: str) -> bytes:
            graph = DiGraph([("r", "a"), ("r", "b"), ("a", "c"), ("b", "c")])
            index = IntervalTCIndex.build(graph, gap=4)
            path = tmp_path / f"{tag}.rtcx"
            write_index(index, path)
            return path.read_bytes()

        assert build_bytes("first") == build_bytes("second")
