"""End-to-end tests for the durable-store CLI surface."""

import json

import pytest

from repro.cli import main

EDGES = """\
a b
a c
b d
c d
"""


@pytest.fixture
def edges_file(tmp_path):
    path = tmp_path / "graph.edges"
    path.write_text(EDGES)
    return str(path)


@pytest.fixture
def store_dir(edges_file, tmp_path, capsys):
    target = str(tmp_path / "store.d")
    assert main(["build", edges_file, "--durable", target]) == 0
    capsys.readouterr()
    return target


class TestDurableFlows:
    def test_build_reports_store(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "s.d")
        assert main(["build", edges_file, "--durable", target]) == 0
        out = capsys.readouterr().out
        assert "durable store built" in out
        assert "checkpoint-" in out

    def test_query(self, store_dir, capsys):
        assert main(["query", "--durable", store_dir, "a", "d"]) == 0
        assert capsys.readouterr().out.strip() == "reachable"
        assert main(["query", "--durable", store_dir, "d", "a"]) == 1
        assert capsys.readouterr().out.strip() == "not-reachable"

    def test_successors_and_predecessors(self, store_dir, capsys):
        assert main(["successors", "--durable", store_dir, "a"]) == 0
        assert capsys.readouterr().out.split() == ["b", "c", "d"]
        assert main(["predecessors", "--durable", store_dir, "d"]) == 0
        assert capsys.readouterr().out.split() == ["a", "b", "c"]

    def test_update_journals_and_persists(self, store_dir, tmp_path, capsys):
        diff = tmp_path / "patch.diff"
        diff.write_text("+ d e\n- a c\n")
        assert main(["update", "--durable", store_dir, str(diff)]) == 0
        assert "ops journalled" in capsys.readouterr().out
        assert main(["query", "--durable", store_dir, "a", "e"]) == 0

    def test_checkpoint_and_log_stats(self, store_dir, capsys):
        assert main(["checkpoint", store_dir]) == 0
        assert "checkpoint written to" in capsys.readouterr().out
        assert main(["log-stats", store_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["engine"] == "interval"
        assert stats["replay_backlog"] == 0
        assert stats["torn_bytes"] == 0

    def test_recover_reports(self, store_dir, capsys):
        assert main(["recover", store_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corruption_detected"] is False
        assert payload["nodes"] == 4
        assert payload["resumed_at_seq"] == payload["last_seq"] + 1

    def test_crash_fuzz_smoke(self, capsys):
        assert main(["crash-fuzz", "--ops", "50", "--seed", "1",
                     "--occurrences", "1", "--no-bit-flips"]) == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert '"points_never_reached": []' in out


class TestDurableErrors:
    def test_query_needs_index_or_store(self, capsys):
        assert main(["query", "a", "b"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["log-stats", missing]) == 2
        assert main(["query", "--durable", missing, "a", "b"]) == 2

    def test_corrupt_index_file_one_line_diagnosis(self, tmp_path, capsys):
        path = tmp_path / "closure.json"
        path.write_text("{definitely not json")
        assert main(["query", str(path), "a", "b"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "closure.json" in err
        assert len(err.strip().splitlines()) == 1
