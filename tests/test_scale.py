"""Moderate-scale sanity: the library handles thousands of nodes briskly.

Not micro-benchmarks (those live in ``benchmarks/``) — these are
regression tripwires against accidental quadratic behaviour on the paths
that must stay near-linear.
"""

import random
import time

import pytest

from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag, random_dag_local, random_tree
from repro.graph.traversal import reachable_from


def timed(function):
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


class TestBuildScale:
    def test_5000_node_tree_builds_fast(self):
        tree = random_tree(5000, 1)
        index, seconds = timed(lambda: IntervalTCIndex.build(tree, gap=1))
        assert index.num_intervals == 5000
        assert seconds < 10

    def test_3000_node_local_dag(self):
        graph = random_dag_local(3000, 3, 2)
        index, seconds = timed(lambda: IntervalTCIndex.build(graph, gap=1))
        assert seconds < 20
        # Spot-check correctness at scale.
        rng = random.Random(0)
        nodes = list(graph.nodes())
        for _ in range(10):
            node = rng.choice(nodes)
            assert index.successors(node) == reachable_from(graph, node)

    def test_2000_node_uniform_dag(self):
        graph = random_dag(2000, 4, 5)
        index, seconds = timed(lambda: IntervalTCIndex.build(graph, gap=1))
        assert seconds < 30
        index.check_invariants()


class TestQueryScale:
    @pytest.fixture(scope="class")
    def big_index(self):
        return IntervalTCIndex.build(random_dag(3000, 3, 11), gap=1)

    def test_100k_reachability_queries(self, big_index):
        rng = random.Random(1)
        nodes = list(big_index.nodes())
        pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(100_000)]
        hits, seconds = timed(
            lambda: sum(big_index.reachable(u, v) for u, v in pairs))
        assert 0 <= hits <= len(pairs)
        assert seconds < 15

    def test_successor_decoding(self, big_index):
        rng = random.Random(2)
        nodes = list(big_index.nodes())
        sources = [rng.choice(nodes) for _ in range(200)]
        total, seconds = timed(
            lambda: sum(len(big_index.successors(s)) for s in sources))
        assert total >= len(sources)
        assert seconds < 10


class TestUpdateScale:
    def test_2000_incremental_inserts(self):
        index = IntervalTCIndex.build(random_dag(500, 2, 3), gap=64)
        rng = random.Random(4)
        # Refresh the parent-candidate list every 256 inserts.
        nodes_cache = list(index.nodes())
        start = time.perf_counter()
        for step in range(2000):
            if step % 256 == 0:
                nodes_cache = list(index.nodes())
            index.add_node(("s", step), parents=[rng.choice(nodes_cache)])
        seconds = time.perf_counter() - start
        assert seconds < 20
        index.check_invariants()

    def test_batched_deletion_scale(self):
        from repro.core.batch import apply_operations, operations_from_pairs
        graph = random_dag(1000, 3, 6)
        index = IntervalTCIndex.build(graph, gap=1)
        victims = list(graph.arcs())[:400]
        _, seconds = timed(lambda: apply_operations(
            index, operations_from_pairs(remove=victims)))
        assert seconds < 20
        index.check_invariants()
