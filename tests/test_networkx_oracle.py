"""Cross-validation against networkx — a fully independent oracle.

Everything else in the suite ultimately compares against our own
pointer-chasing DFS.  These tests compare the library's core results
against networkx's independent implementations: transitive closure,
ancestors/descendants, topological sorting, DAG depth, and transitive
reduction.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.chain_cover import optimal_chain_decomposition
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.metrics import (
    longest_path_length,
    reachability_count,
    transitive_reduction_size,
)
from repro.graph.traversal import topological_order


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    mirror = nx.DiGraph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.arcs())
    return mirror


@st.composite
def dags(draw):
    n = draw(st.integers(1, 16))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=45))
    graph = DiGraph(nodes=range(n))
    for a, b in pairs:
        if a != b:
            graph.add_arc(min(a, b), max(a, b))
    return graph


@settings(max_examples=40)
@given(dags())
def test_closure_matches_networkx(graph):
    index = IntervalTCIndex.build(graph, gap=1)
    reference = nx.transitive_closure(to_networkx(graph), reflexive=False)
    for node in graph:
        expected = set(reference.successors(node)) | {node}
        assert index.successors(node) == expected


@settings(max_examples=40)
@given(dags())
def test_predecessors_match_networkx_ancestors(graph):
    index = IntervalTCIndex.build(graph, gap=1)
    mirror = to_networkx(graph)
    for node in graph:
        assert index.predecessors(node, reflexive=False) == \
            nx.ancestors(mirror, node)


@settings(max_examples=40)
@given(dags())
def test_topological_order_is_valid_per_networkx(graph):
    order = topological_order(graph)
    mirror = to_networkx(graph)
    position = {node: i for i, node in enumerate(order)}
    # networkx validates a topological sort via all_topological_sorts
    # membership being expensive; checking edge directions is equivalent.
    assert all(position[u] < position[v] for u, v in mirror.edges())


@settings(max_examples=30)
@given(dags())
def test_depth_matches_networkx(graph):
    assert longest_path_length(graph) == \
        nx.dag_longest_path_length(to_networkx(graph))


@settings(max_examples=30)
@given(dags())
def test_reachability_count_matches_networkx(graph):
    reference = nx.transitive_closure(to_networkx(graph), reflexive=False)
    assert reachability_count(graph) == reference.number_of_edges()


@settings(max_examples=30)
@given(dags())
def test_transitive_reduction_matches_networkx(graph):
    reference = nx.transitive_reduction(to_networkx(graph))
    assert transitive_reduction_size(graph) == reference.number_of_edges()


@pytest.mark.parametrize("seed,degree", [(0, 1.5), (1, 2.5), (2, 4.0)])
def test_dilworth_width_matches_networkx_antichain(seed, degree):
    """Minimum chain count == maximum antichain size (Dilworth)."""
    graph = random_dag(18, degree, seed)
    chains = optimal_chain_decomposition(graph)
    mirror = to_networkx(graph)
    closure = nx.transitive_closure(mirror)
    widest = max(len(antichain) for antichain in nx.antichains(closure))
    assert len(chains) == widest


@pytest.mark.parametrize("seed", range(3))
def test_larger_random_dag_closure(seed):
    graph = random_dag(120, 3, seed)
    index = IntervalTCIndex.build(graph)
    reference = nx.transitive_closure(to_networkx(graph), reflexive=False)
    for node in list(graph.nodes())[::10]:
        assert index.successors(node, reflexive=False) == \
            set(reference.successors(node))
