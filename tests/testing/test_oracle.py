"""The oracle layer: independent ground truth and engine comparison."""

import pytest

from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.testing.oracle import (
    ENGINE_FACTORIES,
    DifferentialMismatch,
    SetClosureOracle,
    build_engines,
    compare_engine,
)


def test_oracle_closure_reflexive_and_transitive():
    oracle = SetClosureOracle(arcs=[("a", "b"), ("b", "c")])
    assert oracle.reachable("a", "a")
    assert oracle.reachable("a", "c")
    assert not oracle.reachable("c", "a")
    assert oracle.successors("a") == {"a", "b", "c"}
    assert oracle.predecessors("c") == {"a", "b", "c"}


def test_oracle_mutations_mirror_index_api():
    oracle = SetClosureOracle(arcs=[(0, 1), (1, 2), (0, 3)])
    oracle.remove_arc(1, 2)
    assert not oracle.reachable(0, 2)
    oracle.add_arc(3, 2)
    assert oracle.reachable(0, 2)
    oracle.remove_node(3)
    assert not oracle.reachable(0, 2)
    assert 3 not in oracle
    assert (3, 2) not in oracle.arcs()


def test_oracle_is_independent_of_the_index_graph():
    graph = DiGraph([(0, 1)])
    oracle = SetClosureOracle(arcs=[(0, 1)])
    index = IntervalTCIndex.build(graph)
    # Mutate the index behind the oracle's back: the oracle must not follow.
    index.add_node(2, parents=[1])
    assert 2 not in oracle
    with pytest.raises(DifferentialMismatch):
        compare_engine("interval", index, oracle)


def test_every_registered_engine_matches_on_a_dag():
    arcs = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5)]
    oracle = SetClosureOracle(arcs=arcs)
    engines = build_engines(oracle, list(ENGINE_FACTORIES))
    assert set(engines) == set(ENGINE_FACTORIES)
    for name, engine in engines.items():
        assert compare_engine(name, engine, oracle) > 0


def test_pairwise_fallback_for_reachable_only_engines():
    class ReachableOnly:
        def reachable(self, source, destination):
            return True  # wrong for most pairs

    oracle = SetClosureOracle(arcs=[(0, 1), (2, 3)])
    with pytest.raises(DifferentialMismatch):
        compare_engine("stub", ReachableOnly(), oracle)
