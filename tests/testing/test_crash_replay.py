"""Auto-replay every committed crash file under ``tests/crashes/``.

Two kinds of file live there, distinguished by the trace's ``fault``:

* ``fault: null`` — a minimised repro of a *real* bug that has since been
  fixed.  Replay must now PASS; a failure here is a regression.
* ``fault: "<name>"`` — a harness self-test produced by an injected
  fault.  Replay re-installs the fault and must still FAIL, proving the
  catch/shrink/replay pipeline stays wired end to end.
"""

import glob
import os

import pytest

from repro.testing.crash import load_crash, replay_crash

CRASH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "crashes")
CRASH_FILES = sorted(glob.glob(os.path.join(CRASH_DIR, "*.json")))


def _crash_id(path):
    return os.path.basename(path)


def test_crash_corpus_exists():
    assert CRASH_FILES, "tests/crashes/ must hold at least one crash file"


@pytest.mark.parametrize("path", CRASH_FILES, ids=_crash_id)
def test_replay_crash_file(path):
    payload = load_crash(path)
    failure, report = replay_crash(path)
    if payload["trace"].fault:
        assert failure is not None, (
            f"{_crash_id(path)} injects fault {payload['trace'].fault!r} "
            "but no longer fails: the harness lost its teeth")
        assert type(failure.cause).__name__ == payload["cause"]
    else:
        assert failure is None, (
            f"{_crash_id(path)} regressed: {failure}")
        assert report.violations == 0
