"""The differential matrix's "cluster" engine: fuzz through real forks.

Same construction as the "server" engine (see test_server_engine.py),
one level more hostile: every checkpoint comparison rebuilds a hybrid
from the oracle's arcs, publishes it as an RTCF generation, forks two
worker processes that mmap it, and answers the oracle's questions with
framed round trips that land on a kernel-chosen worker.  A divergence
anywhere in the generation format, the mmap view, cross-process write
forwarding, or the publish protocol fails like an engine bug would.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.graph.digraph import DiGraph
from repro.server.inprocess import ClusterThread, ServerBackedEngine
from repro.testing.fuzzer import fuzz
from repro.testing.oracle import (ENGINE_FACTORIES, DifferentialMismatch,
                                  SetClosureOracle, compare_engine)


def test_cluster_is_a_registered_engine():
    assert "cluster" in ENGINE_FACTORIES


def test_fuzz_through_live_cluster():
    """A short differential run replayed through forked workers reading
    mmap'd generations stays clean.  Kept small: every checkpoint forks
    a fresh two-worker cluster."""
    _, report = fuzz(num_ops=40, seed=13, num_nodes=10, check_every=40,
                     engines=("cluster",))
    assert report.violations == 0
    assert report.differential_checks > 0


def test_factory_builds_comparable_engine():
    graph = DiGraph([("x", "y"), ("y", "z")])
    oracle = SetClosureOracle(arcs=graph.arcs())
    engine = ENGINE_FACTORIES["cluster"](graph)
    try:
        assert compare_engine("cluster", engine, oracle,
                              predecessors=True) == 6
    finally:
        engine.close()


def test_mismatch_is_caught_through_the_forks():
    """Harness self-test: a cluster serving the WRONG graph must fail."""
    oracle = SetClosureOracle(arcs=[("x", "y"), ("y", "z")])
    wrong = DiGraph([("x", "y")])  # y->z missing
    with ClusterThread(lambda: HybridTCIndex.build(wrong),
                       workers=2) as thread:
        engine = ServerBackedEngine(thread)
        with pytest.raises(DifferentialMismatch):
            compare_engine("cluster", engine, oracle)
