"""The differential matrix's "server" engine: fuzz through a live wire.

Every checkpoint comparison rebuilds a hybrid from the oracle's arcs,
serves it from a background-thread server, and answers the oracle's
questions with real framed round trips — so a divergence anywhere in
framing, dispatch, coalescing, or JSON transport fails the same way an
engine bug would.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.graph.digraph import DiGraph
from repro.server.inprocess import ServerBackedEngine, ServerThread
from repro.testing.fuzzer import fuzz
from repro.testing.oracle import (ENGINE_FACTORIES, DifferentialMismatch,
                                  SetClosureOracle, compare_engine)


def test_server_is_a_registered_engine():
    assert "server" in ENGINE_FACTORIES


def test_fuzz_through_live_server():
    """A short differential run replayed through the wire stays clean."""
    _, report = fuzz(num_ops=80, seed=21, num_nodes=12, check_every=40,
                     engines=("server",))
    assert report.violations == 0
    assert report.differential_checks > 0


def test_factory_builds_comparable_engine():
    graph = DiGraph([("x", "y"), ("y", "z")])
    oracle = SetClosureOracle(arcs=graph.arcs())
    engine = ENGINE_FACTORIES["server"](graph)
    try:
        assert compare_engine("server", engine, oracle,
                              predecessors=True) == 6
    finally:
        engine.close()


def test_mismatch_is_caught_through_the_wire():
    """Harness self-test: a server over the WRONG graph must fail."""
    oracle = SetClosureOracle(arcs=[("x", "y"), ("y", "z")])
    wrong = DiGraph([("x", "y")])  # y->z missing
    with ServerThread(lambda: HybridTCIndex.build(wrong)) as thread:
        engine = ServerBackedEngine(thread)
        with pytest.raises(DifferentialMismatch):
            compare_engine("server", engine, oracle)
