"""The fuzz loop end to end: clean runs, determinism, replay, shrinking.

The parametrized fault test is the harness's own mutation test — every
registered fault must be *caught* by the fuzzer, *shrunk* to a smaller
trace, *saved* to a crash file, and *replayed* from it still failing.
"""

import json

import pytest

from repro.testing.crash import load_crash, replay_crash, save_crash
from repro.testing.faults import FAULTS
from repro.testing.fuzzer import (
    DEFAULT_ENGINES,
    FuzzRunner,
    Trace,
    TraceFailure,
    fuzz,
    replay,
)
from repro.testing.shrink import shrink_trace

SMOKE = dict(num_ops=200, seed=3, num_nodes=18, check_every=25)


def test_clean_fuzz_smoke():
    trace, report = fuzz(**SMOKE)
    assert report.violations == 0
    assert report.applied > 0
    assert report.audits > 0
    assert report.differential_checks > 0
    assert report.freezes > 0
    assert len(trace.ops) == SMOKE["num_ops"]


def test_fuzz_is_deterministic_per_seed():
    trace_a, report_a = fuzz(**SMOKE)
    trace_b, report_b = fuzz(**SMOKE)
    assert trace_a.to_dict() == trace_b.to_dict()
    assert report_a.as_dict() == report_b.as_dict()
    trace_c, _ = fuzz(**dict(SMOKE, seed=4))
    assert trace_c.to_dict() != trace_a.to_dict()


def test_replay_reproduces_the_recorded_run():
    trace, report = fuzz(**SMOKE)
    replayed = replay(trace, check_every=SMOKE["check_every"])
    assert replayed.applied == report.applied
    assert replayed.skipped == report.skipped
    assert replayed.final_nodes == report.final_nodes
    assert replayed.final_arcs == report.final_arcs


def test_trace_json_roundtrip():
    trace, _ = fuzz(num_ops=60, seed=9, num_nodes=10)
    wire = json.dumps(trace.to_dict(), sort_keys=True)
    restored = Trace.from_dict(json.loads(wire))
    assert restored.to_dict() == trace.to_dict()
    assert restored.seed_arcs == trace.seed_arcs  # tuples survive the wire


def test_inapplicable_ops_are_skipped_not_errors():
    trace = Trace(seed=None, gap=4, numbering="integer",
                  seed_nodes=[0, 1, 2], seed_arcs=[(0, 1)],
                  ops=[["remove_arc", 1, 2],      # arc absent -> skip
                       ["remove_node", 99],       # node absent -> skip
                       ["add_node", 0, [1]],      # label taken -> skip
                       ["add_arc", 1, 0],         # would cycle -> skip
                       ["add_arc", 1, 2],         # applies
                       ["query", 0, 2]])          # applies
    report = FuzzRunner(trace).run()
    assert report.skipped == 4
    assert report.applied == 2
    assert report.violations == 0


def test_fractional_numbering_fuzz_smoke():
    _, report = fuzz(num_ops=150, seed=5, num_nodes=14,
                     numbering="fractional", check_every=30)
    assert report.violations == 0
    assert report.applied > 0


@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_fault_is_caught_shrunk_and_replayed(fault, tmp_path):
    with pytest.raises(TraceFailure) as excinfo:
        fuzz(num_ops=300, seed=11, num_nodes=18, check_every=10, fault=fault)
    failure = excinfo.value
    assert failure.trace.fault == fault

    result = shrink_trace(failure, check_every=10)
    assert len(result.trace.ops) <= len(failure.trace.ops)
    assert result.replays > 0

    path = save_crash(result.failure, str(tmp_path),
                      check_every=10, shrink=result)
    payload = load_crash(path)
    assert payload["trace"].fault == fault
    ops_before, ops_after = payload["shrink"]["ops"]
    assert ops_before >= ops_after

    # With the fault re-installed the shrunk trace must still fail ...
    replayed_failure, report = replay_crash(path)
    assert replayed_failure is not None and report is None

    # ... and with the fault removed (i.e. the bug "fixed") it must pass,
    # proving the fault patches were fully restored.
    healthy = Trace.from_dict(result.trace.to_dict())
    healthy.fault = None
    clean_report = replay(healthy, check_every=10)
    assert clean_report.violations == 0
