"""The invariant auditor: healthy indexes pass, corruptions are named."""

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.intervals import Interval
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.testing.faults import injected_fault
from repro.testing.invariants import InvariantViolation, audit_index


def _build(arcs, **kwargs):
    return IntervalTCIndex.build(DiGraph(arcs), **kwargs)


PAPER_ARCS = [
    ("a", "b"), ("a", "c"), ("b", "d"), ("b", "e"),
    ("c", "e"), ("c", "f"), ("e", "g"), ("f", "g"),
]


def test_audit_passes_on_healthy_indexes():
    assert audit_index(_build(PAPER_ARCS)) > 0
    assert audit_index(_build(PAPER_ARCS, gap=8, merge=True)) > 0
    assert audit_index(_build(PAPER_ARCS, numbering="fractional")) > 0


def test_audit_passes_across_random_dags_and_updates():
    for seed in range(4):
        graph = random_dag(20, 2.0, seed)
        index = IntervalTCIndex.build(graph, gap=4)
        audit_index(index)
        nodes = list(index.postorder)
        index.add_node("fresh", parents=nodes[:2])
        audit_index(index)
        index.remove_node(nodes[-1])
        audit_index(index)


def test_lemma1_violation_on_truncated_tree_interval():
    index = _build(PAPER_ARCS)
    node = max(index.tree_interval,
               key=lambda n: index.tree_interval[n].hi - index.tree_interval[n].lo)
    interval = index.tree_interval[node]
    index.tree_interval[node] = Interval(interval.hi, interval.hi)
    with pytest.raises(InvariantViolation) as excinfo:
        audit_index(index)
    assert excinfo.value.invariant in ("lemma1", "laminar", "bookkeeping") \
        or "lemma1" in str(excinfo.value)


def test_postorder_violation_when_child_outnumbers_parent():
    index = _build([("a", "b")])
    # Swap the numbers of parent and child without touching anything else.
    index.postorder["a"], index.postorder["b"] = (
        index.postorder["b"], index.postorder["a"])
    index.node_of_number = {number: node
                           for node, number in index.postorder.items()}
    with pytest.raises(InvariantViolation):
        audit_index(index)


def test_subsumption_violation_on_retained_subsumed_interval():
    index = _build(PAPER_ARCS)
    interval_set = index.intervals["a"]
    lo, hi = interval_set._los[0], interval_set._his[0]
    # Force a strictly nested (subsumed) duplicate into the raw storage.
    interval_set._los.insert(1, lo)
    interval_set._his.insert(1, hi)
    with pytest.raises(InvariantViolation) as excinfo:
        audit_index(index)
    # The index's own per-set check fires first under the bookkeeping
    # umbrella; either name proves the corruption is caught.
    assert excinfo.value.invariant in ("bookkeeping", "subsumption")


def test_self_coverage_violation_on_dropped_interval():
    index = _build(PAPER_ARCS)
    interval_set = index.intervals["a"]
    interval_set._los.clear()
    interval_set._his.clear()
    with pytest.raises(InvariantViolation) as excinfo:
        audit_index(index)
    assert excinfo.value.invariant in ("bookkeeping", "self-coverage")


def test_gap_violation_under_leaky_free_range_ledger():
    index = _build(PAPER_ARCS, gap=8)
    audit_index(index)
    with injected_fault("leak-used-numbers"):
        with pytest.raises(InvariantViolation) as excinfo:
            audit_index(index)
    assert excinfo.value.invariant == "gap"
    # The patch is restored on exit.
    audit_index(index)


def test_keep_subsumed_fault_breaks_fresh_builds():
    with injected_fault("keep-subsumed"):
        index = _build(PAPER_ARCS)
        with pytest.raises(InvariantViolation):
            audit_index(index)
