"""Tests for the simulated paging layer."""

import random

import pytest

from repro.baselines.full_closure import FullTCIndex
from repro.core.index import IntervalTCIndex
from repro.errors import NodeNotFoundError, StorageError
from repro.graph.generators import random_dag
from repro.storage.pager import (
    BufferPool,
    PagedIntervalStore,
    PagedSuccessorStore,
)


class TestBufferPool:
    def test_first_access_faults(self):
        pool = BufferPool(4)
        assert not pool.access(1)
        assert pool.counters.page_faults == 1
        assert pool.counters.logical_reads == 1

    def test_second_access_hits(self):
        pool = BufferPool(4)
        pool.access(1)
        assert pool.access(1)
        assert pool.counters.page_faults == 1
        assert pool.counters.logical_reads == 2

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(3)            # evicts 1
        assert pool.counters.evictions == 1
        assert not pool.access(1)  # 1 was evicted -> fault
        assert pool.access(3)      # 3 still resident

    def test_touch_refreshes_recency(self):
        pool = BufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(1)            # 1 is now most recent
        pool.access(3)            # evicts 2, not 1
        assert pool.access(1)
        assert not pool.access(2)

    def test_hit_ratio(self):
        pool = BufferPool(4)
        assert pool.counters.hit_ratio == 1.0
        pool.access(1)
        pool.access(1)
        assert pool.counters.hit_ratio == pytest.approx(0.5)

    def test_flush(self):
        pool = BufferPool(4)
        pool.access(1)
        pool.flush()
        assert pool.resident_pages == 0
        assert not pool.access(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_counters_reset(self):
        pool = BufferPool(2)
        pool.access(1)
        pool.counters.reset()
        assert pool.counters.page_faults == 0
        assert pool.counters.logical_reads == 0


@pytest.fixture
def stores():
    graph = random_dag(80, 3, 11)
    closure = FullTCIndex.build(graph)
    index = IntervalTCIndex.build(graph, gap=1)
    full_store = PagedSuccessorStore(closure, list(graph.nodes()),
                                     pool=BufferPool(16), page_capacity=32)
    interval_store = PagedIntervalStore(index, pool=BufferPool(16),
                                        page_capacity=32)
    return graph, closure, full_store, interval_store


class TestPagedStores:
    def test_answers_match_closure(self, stores):
        graph, closure, full_store, interval_store = stores
        rng = random.Random(0)
        nodes = list(graph.nodes())
        for _ in range(300):
            source, destination = rng.choice(nodes), rng.choice(nodes)
            expected = closure.reachable(source, destination)
            assert full_store.reachable(source, destination) == expected
            assert interval_store.reachable(source, destination) == expected

    def test_queries_generate_io(self, stores):
        graph, _, full_store, interval_store = stores
        node = next(iter(graph.nodes()))
        full_store.reachable(node, node)
        interval_store.reachable(node, node)
        assert full_store.pool.counters.logical_reads >= 1
        assert interval_store.pool.counters.logical_reads >= 1

    def test_compressed_store_occupies_fewer_pages(self, stores):
        _, _, full_store, interval_store = stores
        assert interval_store.num_pages <= full_store.num_pages
        assert interval_store.total_units <= full_store.total_units

    def test_pages_of_spans(self, stores):
        graph, _, full_store, _ = stores
        for node in list(graph.nodes())[:10]:
            assert full_store.pages_of(node) >= 1

    def test_unknown_node(self, stores):
        _, _, full_store, interval_store = stores
        with pytest.raises(NodeNotFoundError):
            full_store.reachable("ghost", "ghost")
        with pytest.raises(NodeNotFoundError):
            interval_store.reachable("ghost", "ghost")

    def test_unknown_destination(self, stores):
        graph, _, _, interval_store = stores
        node = next(iter(graph.nodes()))
        with pytest.raises(NodeNotFoundError):
            interval_store.reachable(node, "ghost")

    def test_tiny_page_capacity_rejected(self, stores):
        graph, closure, _, _ = stores
        with pytest.raises(StorageError):
            PagedSuccessorStore(closure, list(graph.nodes()), page_capacity=1)

    def test_large_record_spans_pages(self):
        graph = random_dag(60, 6, 3)   # dense: some successor lists > 8 units
        closure = FullTCIndex.build(graph)
        store = PagedSuccessorStore(closure, list(graph.nodes()),
                                    pool=BufferPool(64), page_capacity=8)
        assert any(store.pages_of(node) > 1 for node in graph.nodes())

    def test_default_pool_created(self):
        graph = random_dag(20, 2, 5)
        store = PagedIntervalStore(IntervalTCIndex.build(graph, gap=1))
        node = next(iter(graph.nodes()))
        assert store.reachable(node, node)
