"""Tests for binary relations and the materialised closure view."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph.traversal import reachable_from
from repro.storage.relation import BinaryRelation, MaterializedClosureView


class TestBinaryRelation:
    def test_insert_and_contains(self):
        relation = BinaryRelation()
        assert relation.insert("a", "b")
        assert ("a", "b") in relation
        assert not relation.insert("a", "b")   # duplicate
        assert len(relation) == 1

    def test_delete(self):
        relation = BinaryRelation([("a", "b")])
        assert relation.delete("a", "b")
        assert not relation.delete("a", "b")
        assert len(relation) == 0

    def test_reflexive_tuple_rejected(self):
        with pytest.raises(GraphError):
            BinaryRelation([("a", "a")])

    def test_columns(self):
        relation = BinaryRelation([("a", "b"), ("b", "c")])
        assert relation.sources() == {"a", "b"}
        assert relation.destinations() == {"b", "c"}
        assert relation.domain() == {"a", "b", "c"}

    def test_selections(self):
        relation = BinaryRelation([("a", "b"), ("a", "c"), ("b", "c")])
        assert sorted(relation.select_by_source("a")) == [("a", "b"), ("a", "c")]
        assert sorted(relation.select_by_destination("c")) == [("a", "c"), ("b", "c")]

    def test_to_graph(self):
        graph = BinaryRelation([("a", "b")]).to_graph()
        assert graph.has_arc("a", "b")

    def test_iteration(self):
        pairs = {("a", "b"), ("c", "d")}
        assert set(BinaryRelation(pairs)) == pairs


class TestMaterializedView:
    def test_view_answers_closure(self):
        view = MaterializedClosureView.over(
            BinaryRelation([("a", "b"), ("b", "c")]))
        assert view.query("a", "c")
        assert not view.query("c", "a")
        assert view.query("a", "a")

    def test_insert_maintains_view(self):
        view = MaterializedClosureView.over(BinaryRelation([("a", "b")]))
        view.insert("b", "c")
        view.insert("x", "a")          # new source value
        view.insert("p", "q")          # disjoint component
        assert view.query("x", "c")
        assert view.query("p", "q")
        assert not view.query("a", "q")
        view.index.verify()

    def test_duplicate_insert_is_noop(self):
        view = MaterializedClosureView.over(BinaryRelation([("a", "b")]))
        before = view.storage_units
        view.insert("a", "b")
        assert view.storage_units == before

    def test_delete_maintains_view(self):
        view = MaterializedClosureView.over(
            BinaryRelation([("a", "b"), ("b", "c"), ("a", "c")]))
        view.delete("a", "c")
        assert view.query("a", "c")    # still via b
        view.delete("b", "c")
        assert not view.query("a", "c")
        view.index.verify()

    def test_delete_drops_orphan_values(self):
        view = MaterializedClosureView.over(BinaryRelation([("a", "b")]))
        view.delete("a", "b")
        assert not view.relation.domain()
        assert "a" not in view.index

    def test_delete_absent_tuple_is_noop(self):
        view = MaterializedClosureView.over(BinaryRelation([("a", "b")]))
        view.delete("b", "a")
        assert view.query("a", "b")

    def test_successors(self):
        view = MaterializedClosureView.over(
            BinaryRelation([("a", "b"), ("b", "c")]))
        assert view.successors("a") == {"a", "b", "c"}


@settings(max_examples=30)
@given(st.lists(st.tuples(st.sampled_from("abcdefgh"), st.sampled_from("abcdefgh")),
                max_size=25),
       st.integers(0, 100))
def test_view_equals_recomputation_after_any_stream(pairs, seed):
    """The materialised view equals a from-scratch closure at every point."""
    rng = random.Random(seed)
    view = MaterializedClosureView.over(BinaryRelation(), gap=8)
    for source, destination in pairs:
        if source == destination:
            continue
        if rng.random() < 0.7:
            # Insert if acyclic; the view index refuses cycles.
            if source in view.index and destination in view.index and \
                    view.index.reachable(destination, source):
                continue
            view.insert(source, destination)
        else:
            view.delete(source, destination)
    graph = view.relation.to_graph()
    for value in view.relation.domain():
        assert view.successors(value) == reachable_from(graph, value)
