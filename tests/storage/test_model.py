"""Tests for the paper's storage-accounting model."""

import math

import pytest

from repro.baselines.full_closure import FullTCIndex
from repro.baselines.inverse_closure import InverseTCIndex
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.storage.model import (
    StorageComparison,
    compare_storage,
    compressed_closure_units,
    full_closure_units,
    inverse_closure_units,
    relation_units,
)


class TestUnitFunctions:
    def test_relation_units(self, diamond):
        assert relation_units(diamond) == 4

    def test_full_closure_units(self, chain5):
        assert full_closure_units(FullTCIndex.build(chain5)) == 10

    def test_compressed_units(self):
        tree = random_tree(20, 3)
        index = IntervalTCIndex.build(tree, gap=1)
        assert compressed_closure_units(index) == 40

    def test_inverse_units(self, chain5):
        assert inverse_closure_units(InverseTCIndex.build(chain5)) == 0


class TestCompareStorage:
    def test_fields(self, paper_dag):
        comparison = compare_storage(paper_dag)
        assert comparison.num_nodes == paper_dag.num_nodes
        assert comparison.relation == paper_dag.num_arcs
        assert comparison.inverse is None
        assert comparison.inverse_multiple is None

    def test_include_inverse(self, paper_dag):
        comparison = compare_storage(paper_dag, include_inverse=True)
        assert comparison.inverse is not None
        assert comparison.inverse_multiple == pytest.approx(
            comparison.inverse / comparison.relation)

    def test_multiples(self, paper_dag):
        comparison = compare_storage(paper_dag)
        assert comparison.full_multiple == pytest.approx(
            comparison.full_closure / comparison.relation)
        assert comparison.compressed_multiple == pytest.approx(
            comparison.compressed / comparison.relation)
        assert comparison.compression_ratio == pytest.approx(
            comparison.full_closure / comparison.compressed)

    def test_as_dict_keys(self, paper_dag):
        row = compare_storage(paper_dag, include_inverse=True).as_dict()
        for key in ("nodes", "arcs", "relation", "full_closure", "compressed",
                    "full_multiple", "compressed_multiple", "inverse"):
            assert key in row

    def test_zero_arc_graph(self):
        comparison = compare_storage(DiGraph(nodes=range(3)))
        assert math.isnan(comparison.full_multiple)
        assert math.isnan(comparison.compressed_multiple)

    def test_merge_option_never_bigger(self):
        graph = random_dag(60, 3, 2)
        plain = compare_storage(graph, merge=False)
        merged = compare_storage(graph, merge=True)
        assert merged.compressed <= plain.compressed


class TestPaperHeadlines:
    def test_compressed_below_full_on_random_dags(self):
        for seed, degree in [(0, 2), (1, 3), (2, 5)]:
            comparison = compare_storage(random_dag(120, degree, seed))
            assert comparison.compressed < comparison.full_closure

    def test_dense_graph_compresses_below_relation(self):
        """The Figure 3.9 headline: compressed < original at high degree."""
        graph = random_dag(150, 20, 4)
        comparison = compare_storage(graph)
        assert comparison.compressed_multiple < 1.0

    def test_infinite_ratio_for_empty_compressed(self):
        empty = StorageComparison(num_nodes=0, num_arcs=0, relation=0,
                                  full_closure=0, compressed=0)
        assert empty.compression_ratio == float("inf")
