"""Tests for the alpha-extended relational algebra."""

import pytest

from repro.errors import ReproError
from repro.storage.algebra import (
    AlgebraEngine,
    Alpha,
    AlphaPlus,
    Compose,
    Difference,
    Intersect,
    Inverse,
    Rel,
    Select,
    Steps,
    Union,
    ancestors_query,
    reachable_within,
    same_generation_seed,
)
from repro.storage.relation import BinaryRelation


@pytest.fixture
def engine():
    parent = BinaryRelation([
        ("tom", "bob"), ("tom", "liz"),
        ("bob", "ann"), ("bob", "pat"),
        ("pat", "jim"),
    ])
    manages = BinaryRelation([("tom", "hr"), ("bob", "it")])
    return AlgebraEngine({"parent": parent, "manages": manages})


class TestBaseOperators:
    def test_rel(self, engine):
        assert ("tom", "bob") in engine.evaluate(Rel("parent"))

    def test_unknown_relation(self, engine):
        with pytest.raises(ReproError):
            engine.evaluate(Rel("ghost"))

    def test_union(self, engine):
        result = engine.evaluate(Union(Rel("parent"), Rel("manages")))
        assert ("tom", "hr") in result and ("pat", "jim") in result

    def test_difference(self, engine):
        result = engine.evaluate(
            Difference(Alpha(Rel("parent")), Rel("parent")))
        assert ("tom", "ann") in result        # derived, not base
        assert ("tom", "bob") not in result    # base tuple removed

    def test_intersect(self, engine):
        result = engine.evaluate(
            Intersect(Alpha(Rel("parent")), Rel("parent")))
        assert result == engine.evaluate(Rel("parent"))

    def test_inverse(self, engine):
        assert ("bob", "tom") in engine.evaluate(Inverse(Rel("parent")))

    def test_select(self, engine):
        result = engine.evaluate(
            Select(Rel("parent"), lambda a, b: a == "bob"))
        assert result == frozenset({("bob", "ann"), ("bob", "pat")})

    def test_compose(self, engine):
        grandparents = engine.evaluate(Compose(Rel("parent"), Rel("parent")))
        assert grandparents == frozenset(
            {("tom", "ann"), ("tom", "pat"), ("bob", "jim")})

    def test_register(self, engine):
        engine.register("likes", BinaryRelation([("ann", "jim")]))
        assert engine.evaluate(Rel("likes")) == frozenset({("ann", "jim")})


class TestAlpha:
    def test_reflexive_closure(self, engine):
        closure = engine.evaluate(Alpha(Rel("parent")))
        assert ("tom", "jim") in closure
        assert ("tom", "tom") in closure       # reflexive on the domain
        assert ("jim", "tom") not in closure

    def test_strict_closure(self, engine):
        closure = engine.evaluate(AlphaPlus(Rel("parent")))
        assert ("tom", "jim") in closure
        assert ("tom", "tom") not in closure

    def test_alpha_matches_naive_fixpoint(self, engine):
        base = set(engine.evaluate(Rel("parent")))
        fixpoint = set(base)
        while True:
            new = {(a, d) for a, b in fixpoint for c, d in base if b == c}
            if new <= fixpoint:
                break
            fixpoint |= new
        strict = engine.evaluate(AlphaPlus(Rel("parent")))
        assert strict == frozenset(fixpoint)

    def test_alpha_over_cyclic_operand(self, engine):
        symmetric = Union(Rel("parent"), Inverse(Rel("parent")))
        closure = engine.evaluate(Alpha(symmetric))
        # The family is one connected component: everyone reaches everyone.
        assert ("jim", "liz") in closure
        strict = engine.evaluate(AlphaPlus(symmetric))
        assert ("tom", "tom") in strict        # self-reachable via the cycle

    def test_alpha_of_empty(self):
        engine = AlgebraEngine({"empty": BinaryRelation()})
        assert engine.evaluate(Alpha(Rel("empty"))) == frozenset()

    def test_alpha_cached_within_evaluation(self, engine):
        # Two occurrences of the same Alpha node: evaluation must succeed
        # and be consistent (caching is an internal optimisation).
        expression = Intersect(Alpha(Rel("parent")), Alpha(Rel("parent")))
        assert engine.evaluate(expression) == engine.evaluate(Alpha(Rel("parent")))

    def test_self_loop_in_operand(self):
        engine = AlgebraEngine({"r": BinaryRelation([("a", "b")])})
        # Build a self-loop through composition with the inverse.
        loops = engine.evaluate(
            AlphaPlus(Compose(Rel("r"), Inverse(Rel("r")))))
        assert ("a", "a") in loops


class TestSteps:
    def test_one_step_is_the_base(self, engine):
        assert engine.evaluate(Steps(Rel("parent"), 1)) == \
            engine.evaluate(Rel("parent"))

    def test_two_steps_add_grandparents(self, engine):
        two = engine.evaluate(Steps(Rel("parent"), 2))
        assert ("tom", "ann") in two          # grandparent
        assert ("tom", "jim") not in two      # great-grandchild: 3 hops

    def test_converges_to_strict_closure(self, engine):
        deep = engine.evaluate(Steps(Rel("parent"), 10))
        assert deep == engine.evaluate(AlphaPlus(Rel("parent")))

    def test_monotone_in_k(self, engine):
        previous = frozenset()
        for k in range(1, 5):
            current = engine.evaluate(Steps(Rel("parent"), k))
            assert previous <= current
            previous = current

    def test_bad_k(self, engine):
        with pytest.raises(ReproError):
            engine.evaluate(Steps(Rel("parent"), 0))


class TestConvenienceQueries:
    def test_ancestors_query(self, engine):
        result = engine.evaluate(ancestors_query("parent"))
        assert ("jim", "tom") in result
        assert ("tom", "jim") not in result

    def test_reachable_within(self, engine):
        result = engine.evaluate(
            reachable_within("parent", lambda a, b: b == "jim"))
        assert set(result) == {("tom", "jim"), ("bob", "jim"),
                               ("pat", "jim"), ("jim", "jim")}

    def test_same_generation_seed(self, engine):
        result = engine.evaluate(same_generation_seed("parent"))
        assert ("ann", "pat") in result and ("bob", "liz") in result


class TestErrors:
    def test_unknown_expression_type(self, engine):
        class Weird(object):
            pass
        with pytest.raises(ReproError):
            engine.evaluate(Weird())
