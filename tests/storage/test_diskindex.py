"""Tests for the binary on-disk index format."""

import random

import pytest

from repro.core.index import IntervalTCIndex
from repro.errors import NodeNotFoundError, StorageError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from
from repro.storage.diskindex import DiskIntervalIndex, write_index
from repro.storage.pager import BufferPool


@pytest.fixture
def disk_pair(tmp_path):
    graph = random_dag(80, 2.5, 13)
    index = IntervalTCIndex.build(graph, gap=1)
    path = tmp_path / "closure.rtcx"
    write_index(index, path, page_size=256)
    return graph, index, path


class TestWrite:
    def test_returns_file_size(self, tmp_path, diamond):
        index = IntervalTCIndex.build(diamond, gap=1)
        path = tmp_path / "d.rtcx"
        written = write_index(index, path)
        assert written == path.stat().st_size

    def test_tiny_page_rejected(self, tmp_path, diamond):
        index = IntervalTCIndex.build(diamond)
        with pytest.raises(StorageError):
            write_index(index, tmp_path / "d.rtcx", page_size=8)

    def test_fractional_numbering_rejected(self, tmp_path, diamond):
        index = IntervalTCIndex.build(diamond, gap=2, numbering="fractional")
        with pytest.raises(StorageError):
            write_index(index, tmp_path / "d.rtcx")


class TestOpen:
    def test_round_trip_queries(self, disk_pair):
        graph, index, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            assert len(disk) == graph.num_nodes
            rng = random.Random(0)
            nodes = list(graph.nodes())
            for _ in range(400):
                source, destination = rng.choice(nodes), rng.choice(nodes)
                assert disk.reachable(source, destination) == \
                    index.reachable(source, destination)

    def test_successor_sets(self, disk_pair):
        graph, _, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            for node in list(graph.nodes())[:25]:
                assert disk.successors(node) == reachable_from(graph, node)
                assert node not in disk.successors(node, reflexive=False)

    def test_postorder_preserved(self, disk_pair):
        _, index, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            for node in index.nodes():
                assert disk.postorder_of(node) == index.postorder[node]

    def test_contains(self, disk_pair):
        _, _, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            assert 0 in disk and "ghost" not in disk

    def test_unknown_node(self, disk_pair):
        _, _, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            with pytest.raises(NodeNotFoundError):
                disk.reachable("ghost", 0)
            with pytest.raises(NodeNotFoundError):
                disk.postorder_of("ghost")

    def test_tuple_labels_round_trip(self, tmp_path):
        graph = DiGraph([(("s", 0), ("t", 1)), (("t", 1), ("t", 2))])
        index = IntervalTCIndex.build(graph, gap=1)
        path = tmp_path / "tuples.rtcx"
        write_index(index, path)
        with DiskIntervalIndex.open(path) as disk:
            assert disk.reachable(("s", 0), ("t", 2))


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rtcx"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(StorageError):
            DiskIntervalIndex.open(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "tiny.rtcx"
        path.write_bytes(b"RT")
        with pytest.raises(StorageError):
            DiskIntervalIndex.open(path)

    def test_wrong_version(self, tmp_path, diamond, monkeypatch):
        import repro.storage.diskindex as mod
        index = IntervalTCIndex.build(diamond)
        path = tmp_path / "v.rtcx"
        monkeypatch.setattr(mod, "FORMAT_VERSION", 99)
        write_index(index, path)
        monkeypatch.undo()
        with pytest.raises(StorageError):
            DiskIntervalIndex.open(path)


class TestIOAccounting:
    def test_faults_counted(self, disk_pair):
        graph, _, path = disk_pair
        pool = BufferPool(2)
        with DiskIntervalIndex.open(path, pool=pool) as disk:
            rng = random.Random(1)
            nodes = list(graph.nodes())
            for _ in range(200):
                disk.reachable(rng.choice(nodes), rng.choice(nodes))
            assert pool.counters.logical_reads >= 200
            assert 0 < pool.counters.page_faults <= pool.counters.logical_reads

    def test_hot_node_hits_cache(self, disk_pair):
        graph, _, path = disk_pair
        pool = BufferPool(8)
        with DiskIntervalIndex.open(path, pool=pool) as disk:
            node = next(iter(graph.nodes()))
            for other in list(graph.nodes())[:50]:
                disk.reachable(node, other)
            # After the first touch the node's page stays resident.
            assert pool.counters.page_faults <= disk.heap_pages

    def test_heap_pages_positive(self, disk_pair):
        _, _, path = disk_pair
        with DiskIntervalIndex.open(path) as disk:
            assert disk.heap_pages >= 1
