"""Tests for the closure database facade."""

import pytest

from repro.errors import StorageError
from repro.storage.algebra import Alpha, Compose, Rel
from repro.storage.database import ClosureDatabase


@pytest.fixture
def db():
    database = ClosureDatabase()
    database.create_relation("part_of", materialize=True, tuples=[
        ("wheel", "car"), ("bolt", "wheel"), ("engine", "car"),
    ])
    database.create_relation("made_by", tuples=[("car", "acme")])
    return database


class TestSchema:
    def test_names(self, db):
        assert db.relation_names() == ["made_by", "part_of"]

    def test_duplicate_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_relation("part_of")

    def test_reserved_name_rejected(self):
        with pytest.raises(StorageError):
            ClosureDatabase().create_relation("catalog.json")

    def test_drop(self, db):
        db.drop_relation("made_by")
        assert db.relation_names() == ["part_of"]
        with pytest.raises(StorageError):
            db.relation("made_by")

    def test_unknown_relation(self, db):
        with pytest.raises(StorageError):
            db.insert("ghost", "a", "b")

    def test_materialize_later(self, db):
        assert not db.has_view("made_by")
        db.materialize("made_by")
        assert db.has_view("made_by")
        assert db.closure("made_by").query("car", "acme")

    def test_closure_requires_view(self, db):
        with pytest.raises(StorageError):
            db.closure("made_by")


class TestDataManipulation:
    def test_insert_updates_view(self, db):
        db.insert("part_of", "piston", "engine")
        assert db.closure("part_of").query("piston", "car")
        db.closure("part_of").index.verify()

    def test_delete_updates_view(self, db):
        db.delete("part_of", "wheel", "car")
        assert not db.closure("part_of").query("bolt", "car")
        db.closure("part_of").index.verify()

    def test_insert_without_view(self, db):
        db.insert("made_by", "wheel", "wheelco")
        assert ("wheel", "wheelco") in db.relation("made_by")

    def test_storage_units(self, db):
        assert db.storage_units == db.closure("part_of").storage_units


class TestAlgebraIntegration:
    def test_alpha_over_relation(self, db):
        closure = db.evaluate(Alpha(Rel("part_of")))
        assert ("bolt", "car") in closure

    def test_cross_relation_compose(self, db):
        # Which manufacturer does each part transitively belong to?
        makers = db.evaluate(Compose(Alpha(Rel("part_of")), Rel("made_by")))
        assert ("bolt", "acme") in makers


class TestPersistence:
    def test_round_trip(self, db, tmp_path):
        db.insert("part_of", "piston", "engine")
        db.save(tmp_path / "dbdir")
        loaded = ClosureDatabase.load(tmp_path / "dbdir")
        assert loaded.relation_names() == db.relation_names()
        assert loaded.has_view("part_of") and not loaded.has_view("made_by")
        assert loaded.closure("part_of").query("piston", "car")
        assert ("car", "acme") in loaded.relation("made_by")

    def test_loaded_view_is_fresh_and_updatable(self, db, tmp_path):
        db.save(tmp_path / "dbdir")
        loaded = ClosureDatabase.load(tmp_path / "dbdir")
        loaded.insert("part_of", "rim", "wheel")
        assert loaded.closure("part_of").query("rim", "car")
        loaded.closure("part_of").index.verify()

    def test_missing_catalog(self, tmp_path):
        with pytest.raises(StorageError):
            ClosureDatabase.load(tmp_path)

    def test_empty_database_round_trip(self, tmp_path):
        ClosureDatabase().save(tmp_path / "empty")
        loaded = ClosureDatabase.load(tmp_path / "empty")
        assert loaded.relation_names() == []
