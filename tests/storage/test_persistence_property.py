"""Property tests: every persistence path is a faithful round trip."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.core.serialize import index_from_dict, index_to_dict
from repro.graph.digraph import DiGraph
from repro.graph.io import dumps_edge_list, graph_from_dict, graph_to_dict, loads_edge_list
from repro.storage.diskindex import DiskIntervalIndex, write_index
from repro.storage.pager import BufferPool

labels = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=6)


@st.composite
def labelled_dags(draw):
    names = draw(st.lists(labels, min_size=1, max_size=10, unique=True))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, len(names) - 1),
                  st.integers(0, len(names) - 1)),
        max_size=25))
    graph = DiGraph(nodes=names)
    for a, b in pairs:
        if a != b:
            graph.add_arc(names[min(a, b)], names[max(a, b)])
    return graph


@settings(max_examples=30)
@given(labelled_dags())
def test_edge_list_round_trip(graph):
    assert loads_edge_list(dumps_edge_list(graph)) == graph


@settings(max_examples=30)
@given(labelled_dags())
def test_graph_dict_round_trip(graph):
    assert graph_from_dict(graph_to_dict(graph)) == graph


@settings(max_examples=25)
@given(labelled_dags(), st.sampled_from([1, 4, 32]), st.booleans())
def test_json_index_round_trip(graph, gap, merge):
    index = IntervalTCIndex.build(graph, gap=gap, merge=merge)
    again = index_from_dict(index_to_dict(index))
    again.check_invariants()
    for node in graph:
        assert again.successors(node) == index.successors(node)
        assert again.postorder[node] == index.postorder[node]


@settings(max_examples=20, deadline=None)
@given(labelled_dags(), st.sampled_from([64, 256]))
def test_rtcx_round_trip(graph, page_size):
    import tempfile
    from pathlib import Path
    index = IntervalTCIndex.build(graph, gap=1)
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "index.rtcx"
        write_index(index, path, page_size=page_size)
        with DiskIntervalIndex.open(path, pool=BufferPool(4)) as disk:
            assert len(disk) == len(index)
            for node in graph:
                assert disk.successors(node) == index.successors(node)
                assert disk.postorder_of(node) == index.postorder[node]


@settings(max_examples=20)
@given(labelled_dags())
def test_json_round_trip_of_updated_index(graph):
    """Persist -> load -> update -> persist -> load stays exact."""
    index = IntervalTCIndex.build(graph, gap=8)
    first = index_from_dict(index_to_dict(index))
    anchor = next(iter(graph.nodes()))
    first.add_node("zz-new", parents=[anchor])
    second = index_from_dict(index_to_dict(first))
    second.check_invariants()
    second.verify()
    assert second.reachable(anchor, "zz-new")
