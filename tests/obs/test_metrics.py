"""MetricsRegistry: counters, gauges, histograms, snapshot/delta."""

import math
import threading

import pytest

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, NULL_REGISTRY,
                               MetricsRegistry, delta)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", labels={"engine": "a"})
        second = registry.counter("ops_total", labels={"engine": "b"})
        first.inc()
        assert first.value == 1 and second.value == 0

    def test_factory_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_gauge_read_at_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live")
        state = {"value": 1.0}
        gauge.set_function(lambda: state["value"])
        state["value"] = 42.0
        assert registry.snapshot()["gauges"]["live"] == 42.0

    def test_callback_exception_reads_nan(self):
        registry = MetricsRegistry()
        registry.gauge("boom").set_function(lambda: 1 / 0)
        assert math.isnan(registry.snapshot()["gauges"]["boom"])


class TestHistogram:
    def test_observe_and_summary(self):
        histogram = MetricsRegistry().histogram(
            "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        digest = histogram.summary()
        assert digest["count"] == 4
        assert digest["sum"] == pytest.approx(55.55)
        # cumulative bucket counts
        assert [count for _, count in digest["buckets"]] == [1, 2, 3]

    def test_percentiles_clamped_to_observed_range(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe(0.5)
        assert histogram.percentile(50) == pytest.approx(0.5)
        assert histogram.percentile(99) == pytest.approx(0.5)

    def test_percentile_monotone(self):
        histogram = MetricsRegistry().histogram("latency")
        for i in range(1, 101):
            histogram.observe(i / 100)
        p50, p90, p99 = (histogram.percentile(q) for q in (50, 90, 99))
        assert p50 <= p90 <= p99
        assert 0.3 < p50 < 0.7

    def test_observe_ns(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe_ns(1_000_000)  # 1ms
        assert histogram.summary()["sum"] == pytest.approx(1e-3)

    def test_empty_percentile(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.percentile(99) == 0.0

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))


class TestDisabledRegistry:
    def test_disabled_instruments_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        counter.inc()
        histogram = registry.histogram("y")
        histogram.observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled


class TestSnapshotDelta:
    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        histogram = registry.histogram("lat", buckets=(1.0,))
        counter.inc(3)
        histogram.observe(0.5)
        before = registry.snapshot()
        counter.inc(2)
        histogram.observe(0.7)
        after = registry.snapshot()
        diff = delta(before, after)
        assert diff["counters"]["ops"] == 2
        assert diff["histograms"]["lat"]["count"] == 1
        assert diff["histograms"]["lat"]["sum"] == pytest.approx(0.7)

    def test_timer_contextmanager(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        counter = registry.counter("calls")
        with registry.timer(histogram, counter):
            pass
        assert counter.value == 1
        assert histogram.summary()["count"] == 1


class TestThreadSafety:
    def test_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")

        def work():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000
        assert histogram.summary()["count"] == 4000
