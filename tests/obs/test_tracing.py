"""QueryTracer: span trees, ring buffer, thread isolation."""

import threading

from repro.obs.tracing import QueryTracer, format_trace


class TestSpans:
    def test_single_span(self):
        tracer = QueryTracer()
        with tracer.span("reachable", engine="Test"):
            pass
        assert len(tracer) == 1
        [root] = tracer.traces()
        assert root.name == "reachable"
        assert root.annotations["engine"] == "Test"
        assert root.duration_ns >= 0

    def test_nesting_builds_a_tree(self):
        tracer = QueryTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        [root] = tracer.traces()
        assert [child.name for child in root.children] == ["inner", "sibling"]
        assert len(tracer) == 1  # only roots are retained

    def test_annotate_into_innermost_open_span(self):
        tracer = QueryTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate("hit", "tree-interval")
        [root] = tracer.traces()
        assert root.children[0].annotations["hit"] == "tree-interval"
        assert "hit" not in root.annotations

    def test_annotate_outside_span_is_noop(self):
        tracer = QueryTracer()
        tracer.annotate("orphan", 1)  # must not raise
        assert len(tracer) == 0

    def test_current(self):
        tracer = QueryTracer()
        assert tracer.current() is None
        with tracer.span("op"):
            assert tracer.current().name == "op"
        assert tracer.current() is None

    def test_span_survives_exceptions(self):
        tracer = QueryTracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert len(tracer) == 1
        assert tracer.current() is None


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tracer = QueryTracer(capacity=3)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        names = [root.name for root in tracer.traces()]
        assert names == ["op2", "op3", "op4"]

    def test_last(self):
        tracer = QueryTracer(capacity=8)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [r.name for r in tracer.traces(last=2)] == ["op3", "op4"]

    def test_clear(self):
        tracer = QueryTracer()
        with tracer.span("op"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestExport:
    def test_as_dicts_is_jsonable(self):
        import json

        tracer = QueryTracer()
        with tracer.span("outer", engine="E"):
            with tracer.span("inner"):
                tracer.annotate("count", 3)
        payload = tracer.as_dicts()
        json.dumps(payload)  # must not raise
        assert payload[0]["name"] == "outer"
        assert payload[0]["children"][0]["annotations"]["count"] == 3

    def test_format_trace(self):
        tracer = QueryTracer()
        with tracer.span("outer", engine="E"):
            with tracer.span("inner"):
                pass
        [root] = tracer.traces()
        text = format_trace(root)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "engine=E" in lines[0]


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = QueryTracer()
        errors = []

        def work(name):
            try:
                for _ in range(200):
                    with tracer.span(name):
                        barrier_noop()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def barrier_noop():
            pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert 0 < len(tracer) <= 400
