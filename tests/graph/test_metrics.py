"""Tests for the DAG structural metrics."""

import pytest

from repro.baselines.full_closure import FullTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph, random_dag, random_tree
from repro.graph.metrics import (
    GraphProfile,
    level_of,
    longest_path_length,
    profile,
    reachability_count,
    reachability_density,
    redundant_arcs,
    transitive_reduction_size,
    width_by_levels,
)


class TestDepthAndLevels:
    def test_path_depth(self):
        assert longest_path_length(path_graph(5)) == 4

    def test_antichain_depth(self):
        assert longest_path_length(DiGraph(nodes=range(4))) == 0

    def test_diamond_levels(self, diamond):
        levels = level_of(diamond)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}
        assert longest_path_length(diamond) == 2

    def test_longest_not_shortest(self):
        graph = DiGraph([("r", "z"), ("r", "a"), ("a", "b"), ("b", "z")])
        assert level_of(graph)["z"] == 3

    def test_width(self, diamond):
        assert width_by_levels(diamond) == 2

    def test_empty(self):
        assert longest_path_length(DiGraph()) == 0
        assert width_by_levels(DiGraph()) == 0


class TestReachability:
    def test_counts_match_full_closure(self):
        for seed in range(4):
            graph = random_dag(40, 2, seed)
            assert reachability_count(graph) == \
                FullTCIndex.build(graph).num_pairs

    def test_density_of_chain(self):
        assert reachability_density(path_graph(5)) == pytest.approx(1.0)

    def test_density_of_antichain(self):
        assert reachability_density(DiGraph(nodes=range(5))) == 0.0

    def test_density_empty(self):
        assert reachability_density(DiGraph()) == 0.0


class TestRedundancy:
    def test_shortcut_is_redundant(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        assert redundant_arcs(graph) == [("a", "c")]
        assert transitive_reduction_size(graph) == 2

    def test_tree_has_no_redundancy(self):
        tree = random_tree(40, 1)
        assert redundant_arcs(tree) == []
        assert transitive_reduction_size(tree) == tree.num_arcs

    def test_removing_redundant_preserves_reachability(self):
        graph = random_dag(35, 3, 9)
        reduced = graph.copy()
        for source, destination in redundant_arcs(graph):
            reduced.remove_arc(source, destination)
        assert reachability_count(reduced) == reachability_count(graph)

    def test_diamond_plus_shortcut(self, diamond):
        graph = diamond.copy()
        graph.add_arc("a", "d")
        assert ("a", "d") in redundant_arcs(graph)


class TestProfile:
    def test_fields(self, paper_dag):
        shape = profile(paper_dag)
        assert isinstance(shape, GraphProfile)
        assert shape.num_nodes == paper_dag.num_nodes
        assert shape.num_arcs == paper_dag.num_arcs
        assert shape.depth == 3
        assert shape.reachable_pairs == reachability_count(paper_dag)
        assert 0 < shape.density < 1
        assert "depth" in shape.as_dict()

    def test_degree(self, diamond):
        assert profile(diamond).avg_out_degree == pytest.approx(1.0)
