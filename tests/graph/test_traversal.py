"""Unit and property tests for graph traversals."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CycleError, NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import (
    ancestors_of,
    bfs_layers,
    can_reach,
    dfs_postorder,
    dfs_preorder,
    find_cycle,
    is_acyclic,
    reachable_from,
    reverse_topological_order,
    topological_order,
    tree_postorder,
)


class TestTopologicalOrder:
    def test_chain(self, chain5):
        assert topological_order(chain5) == [0, 1, 2, 3, 4]

    def test_respects_arcs(self, paper_dag):
        order = topological_order(paper_dag)
        position = {node: i for i, node in enumerate(order)}
        for source, destination in paper_dag.arcs():
            assert position[source] < position[destination]

    def test_reverse_is_reversed(self, paper_dag):
        assert reverse_topological_order(paper_dag) == \
            list(reversed(topological_order(paper_dag)))

    def test_cycle_raises_with_witness(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(CycleError) as excinfo:
            topological_order(graph)
        cycle = excinfo.value.cycle
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 3

    def test_empty_graph(self):
        assert topological_order(DiGraph()) == []

    @given(st.integers(0, 60), st.floats(0.5, 3.0), st.integers(0, 10_000))
    def test_random_dags_are_acyclic(self, n, degree, seed):
        graph = random_dag(n, min(degree, max(0, (n - 1) / 2)), seed)
        order = topological_order(graph)
        assert len(order) == n


class TestCycleDetection:
    def test_acyclic(self, paper_dag):
        assert is_acyclic(paper_dag)
        assert find_cycle(paper_dag) is None

    def test_two_cycle(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        assert not is_acyclic(graph)
        cycle = find_cycle(graph)
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_cycle_beyond_first_component(self):
        graph = DiGraph([("r", "s"), ("x", "y"), ("y", "z"), ("z", "x")])
        cycle = find_cycle(graph)
        assert set(cycle) == {"x", "y", "z"}


class TestDFS:
    def test_preorder_starts_at_root(self, paper_dag):
        walk = list(dfs_preorder(paper_dag, "a"))
        assert walk[0] == "a"
        assert set(walk) == set(paper_dag.nodes())

    def test_postorder_parent_after_children(self, chain5):
        assert list(dfs_postorder(chain5, 0)) == [4, 3, 2, 1, 0]

    def test_postorder_visits_once(self, diamond):
        walk = list(dfs_postorder(diamond, "a"))
        assert sorted(walk) == ["a", "b", "c", "d"]
        assert walk[-1] == "a"

    def test_unknown_start(self, diamond):
        with pytest.raises(NodeNotFoundError):
            list(dfs_preorder(diamond, "ghost"))
        with pytest.raises(NodeNotFoundError):
            list(dfs_postorder(diamond, "ghost"))


class TestReachability:
    def test_reflexive_by_default(self, diamond):
        assert "a" in reachable_from(diamond, "a")
        assert can_reach(diamond, "a", "a")

    def test_irreflexive_option(self, diamond):
        assert "a" not in reachable_from(diamond, "a", reflexive=False)

    def test_forward_only(self, diamond):
        assert reachable_from(diamond, "b") == {"b", "d"}
        assert not can_reach(diamond, "d", "a")

    def test_ancestors(self, diamond):
        assert ancestors_of(diamond, "d") == {"a", "b", "c", "d"}
        assert ancestors_of(diamond, "d", reflexive=False) == {"a", "b", "c"}

    def test_unknown_nodes(self, diamond):
        with pytest.raises(NodeNotFoundError):
            can_reach(diamond, "ghost", "a")
        with pytest.raises(NodeNotFoundError):
            can_reach(diamond, "a", "ghost")
        with pytest.raises(NodeNotFoundError):
            ancestors_of(diamond, "ghost")

    @given(st.integers(2, 40), st.integers(0, 10_000))
    def test_can_reach_agrees_with_reachable_from(self, n, seed):
        graph = random_dag(n, min(1.5, (n - 1) / 2), seed)
        nodes = list(graph.nodes())
        source = nodes[seed % n]
        reached = reachable_from(graph, source)
        for destination in nodes[:10]:
            assert can_reach(graph, source, destination) == (destination in reached)


class TestBFSLayers:
    def test_layers_of_chain(self, chain5):
        layers = list(bfs_layers(chain5, 0))
        assert layers == [[0], [1], [2], [3], [4]]

    def test_layer_zero_is_start(self, diamond):
        layers = list(bfs_layers(diamond, "a"))
        assert layers[0] == ["a"]
        assert set(layers[1]) == {"b", "c"}
        assert layers[2] == ["d"]

    def test_unknown_start(self, diamond):
        with pytest.raises(NodeNotFoundError):
            list(bfs_layers(diamond, "ghost"))


class TestTreePostorder:
    def test_simple_tree(self):
        children = {"r": ["a", "b"], "a": ["c"]}
        assert list(tree_postorder(children, "r")) == ["c", "a", "b", "r"]

    def test_child_order_hook(self):
        children = {"r": ["b", "a"]}
        walk = list(tree_postorder(children, "r", child_order=sorted))
        assert walk == ["a", "b", "r"]

    def test_revisit_raises(self):
        children = {"r": ["a", "a"]}
        with pytest.raises(CycleError):
            list(tree_postorder(children, "r"))
