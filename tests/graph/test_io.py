"""Tests for edge-list and JSON graph IO."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    dumps_edge_list,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_json,
    loads_edge_list,
    save_edge_list,
    save_json,
)


class TestEdgeListParsing:
    def test_basic(self):
        graph = loads_edge_list("a b\nb c\n")
        assert graph.has_arc("a", "b") and graph.has_arc("b", "c")

    def test_comments_and_blanks(self):
        text = """
        # a comment
        a b   # trailing comment

        b c
        """
        graph = loads_edge_list(text)
        assert graph.num_arcs == 2

    def test_isolated_node_line(self):
        graph = loads_edge_list("lonely\na b\n")
        assert graph.has_node("lonely")
        assert graph.out_degree("lonely") == 0

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(GraphError) as excinfo:
            loads_edge_list("a b\nx y z\n")
        assert "line 2" in str(excinfo.value)

    def test_empty_document(self):
        assert loads_edge_list("").num_nodes == 0


class TestEdgeListRoundTrip:
    def test_round_trip(self, paper_dag):
        assert loads_edge_list(dumps_edge_list(paper_dag)) == paper_dag

    def test_isolated_nodes_round_trip(self):
        graph = DiGraph(nodes=["solo"])
        graph.add_arc("a", "b")
        again = loads_edge_list(dumps_edge_list(graph))
        assert again.has_node("solo")

    def test_empty_round_trip(self):
        assert dumps_edge_list(DiGraph()) == ""

    def test_file_round_trip(self, tmp_path, paper_dag):
        path = tmp_path / "g.edges"
        save_edge_list(paper_dag, path)
        assert load_edge_list(path) == paper_dag


class TestJson:
    def test_dict_round_trip(self, paper_dag):
        assert graph_from_dict(graph_to_dict(paper_dag)) == paper_dag

    def test_file_round_trip(self, tmp_path, paper_dag):
        path = tmp_path / "g.json"
        save_json(paper_dag, path)
        assert load_json(path) == paper_dag

    def test_isolated_nodes_survive(self, tmp_path):
        graph = DiGraph(nodes=["only"])
        path = tmp_path / "g.json"
        save_json(graph, path)
        assert load_json(path).has_node("only")

    def test_missing_keys_tolerated(self):
        assert graph_from_dict({}).num_nodes == 0
