"""Tests for the synthetic workload generators."""

import itertools
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph.generators import (
    bipartite_with_intermediary,
    bipartite_worst_case,
    enumerate_dags,
    grid_dag,
    layered_dag,
    path_graph,
    random_dag,
    random_dag_local,
    random_hierarchy,
    random_tree,
    sample_dags,
)
from repro.graph.traversal import is_acyclic, reachable_from, topological_order


class TestRandomDag:
    def test_counts(self):
        graph = random_dag(100, 2.5, 1)
        assert graph.num_nodes == 100
        assert graph.num_arcs == 250

    def test_acyclic(self):
        for seed in range(5):
            assert is_acyclic(random_dag(50, 3, seed))

    def test_deterministic_for_seed(self):
        first = random_dag(40, 2, 123)
        second = random_dag(40, 2, 123)
        assert first == second

    def test_different_seeds_differ(self):
        assert random_dag(40, 2, 1) != random_dag(40, 2, 2)

    def test_rng_instance_accepted(self):
        rng = random.Random(7)
        graph = random_dag(20, 1, rng)
        assert graph.num_arcs == 20

    def test_too_dense_raises(self):
        with pytest.raises(GraphError):
            random_dag(10, 10, 0)  # 100 arcs > 45 possible

    def test_maximum_density_is_total_order(self):
        graph = random_dag(8, 3.5, 0)  # 28 arcs = all pairs
        assert graph.num_arcs == 28
        order = topological_order(graph)
        assert reachable_from(graph, order[0]) == set(graph.nodes())

    def test_connected_variant(self):
        graph = random_dag(60, 1.5, 3, connect=True)
        roots = [node for node in graph if graph.in_degree(node) == 0]
        assert len(roots) == 1
        assert reachable_from(graph, roots[0]) == set(graph.nodes())

    def test_negative_nodes_raises(self):
        with pytest.raises(GraphError):
            random_dag(-1, 1, 0)

    def test_empty(self):
        assert random_dag(0, 0, 0).num_nodes == 0


class TestLocalDag:
    def test_window_respected(self):
        graph = random_dag_local(100, 2, 5, window=7)
        # Labels equal topological positions in this generator.
        for source, destination in graph.arcs():
            assert 0 < destination - source <= 7

    def test_counts_and_acyclicity(self):
        graph = random_dag_local(200, 3, 9)
        assert graph.num_arcs == 600
        assert is_acyclic(graph)

    def test_bad_window(self):
        with pytest.raises(GraphError):
            random_dag_local(10, 1, 0, window=0)

    def test_too_dense_for_window(self):
        with pytest.raises(GraphError):
            random_dag_local(10, 5, 0, window=2)


class TestRandomTree:
    def test_is_tree(self):
        tree = random_tree(50, 2)
        assert tree.num_arcs == 49
        assert is_acyclic(tree)
        assert all(tree.in_degree(node) == 1 for node in tree if node != 0)

    def test_root_reaches_all(self):
        tree = random_tree(30, 4)
        assert reachable_from(tree, 0) == set(range(30))

    def test_max_children_bound(self):
        tree = random_tree(40, 5, max_children=2)
        assert all(tree.out_degree(node) <= 2 for node in tree)

    def test_single_node(self):
        tree = random_tree(1, 0)
        assert tree.num_nodes == 1 and tree.num_arcs == 0


class TestSpecialShapes:
    def test_path(self):
        graph = path_graph(5)
        assert list(graph.arcs()).__len__() == 4
        assert reachable_from(graph, 0) == {0, 1, 2, 3, 4}

    def test_bipartite_worst_case(self):
        graph = bipartite_worst_case(3, 4)
        assert graph.num_nodes == 7
        assert graph.num_arcs == 12
        assert all(graph.out_degree(("s", i)) == 4 for i in range(3))

    def test_bipartite_hub_preserves_reachability(self):
        direct = bipartite_worst_case(3, 4)
        hubbed = bipartite_with_intermediary(3, 4)
        for i in range(3):
            direct_reach = {node for node in reachable_from(direct, ("s", i))
                            if node[0] == "t"}
            hub_reach = {node for node in reachable_from(hubbed, ("s", i))
                         if node[0] == "t"}
            assert direct_reach == hub_reach

    def test_grid(self):
        graph = grid_dag(3, 4)
        assert graph.num_nodes == 12
        assert is_acyclic(graph)
        assert reachable_from(graph, (0, 0)) == set(graph.nodes())

    def test_layered(self):
        graph = layered_dag([3, 5, 7], 2.0, 3)
        assert graph.num_nodes == 15
        assert is_acyclic(graph)
        # Every non-top node has at least one predecessor.
        top = set(range(3))
        for node in graph:
            if node not in top:
                assert graph.in_degree(node) >= 1


class TestHierarchy:
    def test_rooted_and_acyclic(self):
        graph = random_hierarchy(80, 5)
        assert is_acyclic(graph)
        assert reachable_from(graph, 0) == set(range(80))

    def test_multi_parents_appear(self):
        graph = random_hierarchy(200, 1, multi_parent_probability=0.9)
        assert any(graph.in_degree(node) > 1 for node in graph)

    def test_parent_bound(self):
        graph = random_hierarchy(100, 2, max_parents=2,
                                 multi_parent_probability=1.0)
        assert all(graph.in_degree(node) <= 2 for node in graph)


class TestEnumeration:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 8), (4, 64)])
    def test_counts(self, n, expected):
        graphs = list(enumerate_dags(n))
        assert len(graphs) == expected

    def test_all_distinct(self):
        seen = {frozenset(g.arcs()) for g in enumerate_dags(3)}
        assert len(seen) == 8

    def test_all_acyclic(self):
        assert all(is_acyclic(g) for g in enumerate_dags(4))

    def test_sampling_matches_family(self):
        for graph in sample_dags(5, 50, 3):
            assert graph.num_nodes == 5
            # Arcs always go from lower to higher label: the fixed order.
            assert all(source < destination for source, destination in graph.arcs())

    def test_sampling_deterministic(self):
        first = [frozenset(g.arcs()) for g in sample_dags(4, 10, 11)]
        second = [frozenset(g.arcs()) for g in sample_dags(4, 10, 11)]
        assert first == second


@given(st.integers(1, 30), st.integers(0, 5000))
def test_generator_average_degree_is_exact(n, seed):
    degree = min(1.0, (n - 1) / 2)
    graph = random_dag(n, degree, seed)
    assert graph.num_arcs == round(n * degree)
