"""Tests for Tarjan SCC and condensation, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.traversal import is_acyclic


def _components_as_sets(graph):
    return {frozenset(c) for c in strongly_connected_components(graph)}


class TestKnownGraphs:
    def test_dag_components_are_singletons(self, paper_dag):
        components = _components_as_sets(paper_dag)
        assert components == {frozenset([node]) for node in paper_dag.nodes()}

    def test_single_cycle(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        assert _components_as_sets(graph) == {frozenset(["a", "b", "c"])}

    def test_two_cycles_with_bridge(self):
        graph = DiGraph([("a", "b"), ("b", "a"),
                         ("b", "x"),
                         ("x", "y"), ("y", "x")])
        assert _components_as_sets(graph) == {frozenset(["a", "b"]),
                                              frozenset(["x", "y"])}

    def test_emission_order_is_reverse_topological(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        position = {component: i for i, component in enumerate(components)}
        # 'c' (a sink) must be emitted before 'a' (a source).
        assert position[frozenset(["c"])] < position[frozenset(["a"])]

    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_isolated_nodes(self):
        graph = DiGraph(nodes=["p", "q"])
        assert _components_as_sets(graph) == {frozenset(["p"]), frozenset(["q"])}


class TestCondensation:
    def test_condensation_is_acyclic(self):
        graph = DiGraph([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"),
                         ("d", "c"), ("a", "d")])
        dag, member_of = condensation(graph)
        assert is_acyclic(dag)
        assert member_of["a"] == member_of["b"]
        assert member_of["c"] == member_of["d"]
        assert dag.has_arc(member_of["a"], member_of["c"])

    def test_internal_arcs_dropped(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        dag, _ = condensation(graph)
        assert dag.num_nodes == 1
        assert dag.num_arcs == 0

    def test_member_map_total(self, paper_dag):
        _, member_of = condensation(paper_dag)
        assert set(member_of) == set(paper_dag.nodes())


@st.composite
def random_digraphs(draw):
    """Arbitrary digraphs (cycles allowed) with up to 12 nodes."""
    n = draw(st.integers(1, 12))
    arcs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=40,
    ))
    graph = DiGraph(nodes=range(n))
    for source, destination in arcs:
        if source != destination:
            graph.add_arc(source, destination)
    return graph


class TestAgainstNetworkx:
    @given(random_digraphs())
    def test_components_match_networkx(self, graph):
        reference = nx.DiGraph()
        reference.add_nodes_from(graph.nodes())
        reference.add_edges_from(graph.arcs())
        expected = {frozenset(c) for c in nx.strongly_connected_components(reference)}
        assert _components_as_sets(graph) == expected

    def test_deep_recursion_safety(self):
        # A 5000-node cycle would overflow a recursive Tarjan.
        n = 5000
        arcs = [(i, (i + 1) % n) for i in range(n)]
        graph = DiGraph(arcs)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert len(components[0]) == n


class TestRandomizedCondensation:
    @pytest.mark.parametrize("seed", range(5))
    def test_condensation_reachability_consistent(self, seed):
        rng = random.Random(seed)
        graph = DiGraph(nodes=range(30))
        for _ in range(60):
            a, b = rng.randrange(30), rng.randrange(30)
            if a != b:
                graph.add_arc(a, b)
        dag, member_of = condensation(graph)
        assert is_acyclic(dag)
        # Components partition the nodes.
        assert sorted(node for component in dag.nodes() for node in component) \
            == sorted(graph.nodes())
        assert all(node in member_of[node] for node in graph.nodes())
