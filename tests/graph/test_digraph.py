"""Unit tests for the DiGraph container."""

import pytest

from repro.errors import ArcNotFoundError, GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_nodes == 0
        assert graph.num_arcs == 0
        assert list(graph.nodes()) == []
        assert list(graph.arcs()) == []

    def test_from_arcs(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        assert graph.num_nodes == 3
        assert graph.num_arcs == 2
        assert graph.has_arc("a", "b")

    def test_from_nodes_and_arcs(self):
        graph = DiGraph(arcs=[("a", "b")], nodes=["z"])
        assert graph.has_node("z")
        assert graph.num_nodes == 3

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.num_nodes == 1

    def test_add_arc_idempotent(self):
        graph = DiGraph()
        graph.add_arc("a", "b")
        graph.add_arc("a", "b")
        assert graph.num_arcs == 1

    def test_add_arc_creates_nodes(self):
        graph = DiGraph()
        graph.add_arc(1, 2)
        assert graph.has_node(1) and graph.has_node(2)

    def test_self_loop_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_arc("a", "a")

    def test_heterogeneous_labels(self):
        graph = DiGraph([(1, "two"), (("t", 3), 1)])
        assert graph.has_arc(("t", 3), 1)


class TestRemoval:
    def test_remove_arc(self):
        graph = DiGraph([("a", "b"), ("a", "c")])
        graph.remove_arc("a", "b")
        assert not graph.has_arc("a", "b")
        assert graph.num_arcs == 1
        assert "b" in graph  # node survives

    def test_remove_missing_arc_raises(self):
        graph = DiGraph([("a", "b")])
        with pytest.raises(ArcNotFoundError):
            graph.remove_arc("b", "a")

    def test_remove_arc_unknown_source_raises(self):
        graph = DiGraph([("a", "b")])
        with pytest.raises(ArcNotFoundError):
            graph.remove_arc("zzz", "b")

    def test_remove_node_detaches_arcs(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("d", "b")])
        graph.remove_node("b")
        assert graph.num_arcs == 0
        assert graph.num_nodes == 3
        assert "b" not in graph

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().remove_node("ghost")


class TestInspection:
    def test_successors_predecessors(self, diamond):
        assert diamond.successors("a") == {"b", "c"}
        assert diamond.predecessors("d") == {"b", "c"}
        assert diamond.predecessors("a") == set()

    def test_successors_unknown_node(self, diamond):
        with pytest.raises(NodeNotFoundError):
            diamond.successors("zzz")
        with pytest.raises(NodeNotFoundError):
            diamond.predecessors("zzz")

    def test_degrees(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("d") == 2
        assert diamond.average_out_degree() == pytest.approx(1.0)

    def test_average_out_degree_empty(self):
        assert DiGraph().average_out_degree() == 0.0

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == ["a"]
        assert diamond.leaves() == ["d"]

    def test_contains_len_iter(self, diamond):
        assert "a" in diamond and "zzz" not in diamond
        assert len(diamond) == 4
        assert set(iter(diamond)) == {"a", "b", "c", "d"}

    def test_arcs_iteration_complete(self, diamond):
        assert sorted(diamond.arcs()) == [("a", "b"), ("a", "c"),
                                          ("b", "d"), ("c", "d")]


class TestDerivation:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_arc("d", "e")
        assert "e" not in diamond
        assert clone.num_arcs == diamond.num_arcs + 1

    def test_copy_equality(self, diamond):
        assert diamond.copy() == diamond

    def test_reverse(self, diamond):
        flipped = diamond.reverse()
        assert flipped.has_arc("d", "b")
        assert flipped.successors("d") == {"b", "c"}
        assert flipped.num_arcs == diamond.num_arcs

    def test_subgraph(self, paper_dag):
        sub = paper_dag.subgraph(["a", "b", "d"])
        assert sub.num_nodes == 3
        assert sub.has_arc("a", "b") and sub.has_arc("b", "d")
        assert not sub.has_node("c")

    def test_subgraph_unknown_node(self, paper_dag):
        with pytest.raises(NodeNotFoundError):
            paper_dag.subgraph(["a", "ghost"])

    def test_eq_different_type(self, diamond):
        assert diamond != "not a graph"

    def test_to_dot_contains_arcs(self, diamond):
        dot = diamond.to_dot()
        assert '"a" -> "b";' in dot
        assert dot.startswith("digraph")
