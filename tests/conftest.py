"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.graph.digraph import DiGraph

# A calmer default hypothesis profile: the property tests build whole
# indexes per example, which is slow under the default deadline.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def paper_dag() -> DiGraph:
    """A small multi-path DAG in the spirit of the paper's Figure 3.2.

    Shape::

          a
         / \\
        b   c
       /|   |\\
      d e   f g        (plus cross arcs c->e and e->h)
        |   |
        h   h
    """
    return DiGraph([
        ("a", "b"), ("a", "c"),
        ("b", "d"), ("b", "e"),
        ("c", "e"), ("c", "f"), ("c", "g"),
        ("e", "h"), ("f", "h"),
    ])


@pytest.fixture
def diamond() -> DiGraph:
    """The smallest multi-parent DAG: a -> {b, c} -> d."""
    return DiGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


@pytest.fixture
def chain5() -> DiGraph:
    """A five-node path 0 -> 1 -> 2 -> 3 -> 4."""
    return DiGraph([(i, i + 1) for i in range(4)])
