"""Tests for the materialised full closure."""

import pytest

from repro.baselines.full_closure import FullTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


class TestBuild:
    def test_diamond(self, diamond):
        closure = FullTCIndex.build(diamond)
        assert closure.successors("a") == {"a", "b", "c", "d"}
        assert closure.successors("a", reflexive=False) == {"b", "c", "d"}

    def test_matches_ground_truth(self, paper_dag):
        closure = FullTCIndex.build(paper_dag)
        for node in paper_dag:
            assert closure.successors(node) == reachable_from(paper_dag, node)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_dag(50, 2, seed)
        closure = FullTCIndex.build(graph)
        for node in graph:
            assert closure.successors(node) == reachable_from(graph, node)


class TestQueries:
    def test_reflexive(self, diamond):
        closure = FullTCIndex.build(diamond)
        assert closure.reachable("d", "d")

    def test_direction(self, diamond):
        closure = FullTCIndex.build(diamond)
        assert closure.reachable("a", "d")
        assert not closure.reachable("d", "a")

    def test_predecessors(self, diamond):
        closure = FullTCIndex.build(diamond)
        assert closure.predecessors("d") == {"a", "b", "c", "d"}
        assert closure.predecessors("d", reflexive=False) == {"a", "b", "c"}
        assert closure.predecessors("a", reflexive=False) == set()

    def test_unknown_nodes(self, diamond):
        closure = FullTCIndex.build(diamond)
        for call in (lambda: closure.reachable("ghost", "a"),
                     lambda: closure.reachable("a", "ghost"),
                     lambda: closure.successors("ghost"),
                     lambda: closure.predecessors("ghost")):
            with pytest.raises(NodeNotFoundError):
                call()


class TestStorage:
    def test_pairs_exclude_reflexive(self, chain5):
        closure = FullTCIndex.build(chain5)
        # Chain of 5: 4+3+2+1 = 10 ordered pairs.
        assert closure.num_pairs == 10
        assert closure.storage_units == 10

    def test_len(self, diamond):
        assert len(FullTCIndex.build(diamond)) == 4
