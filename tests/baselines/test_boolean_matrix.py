"""Tests for the bit-matrix closure."""

import pytest

from repro.baselines.boolean_matrix import BitMatrixTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


class TestCorrectness:
    def test_diamond(self, diamond):
        matrix = BitMatrixTCIndex.build(diamond)
        assert matrix.reachable("a", "d")
        assert not matrix.reachable("d", "a")
        assert matrix.reachable("b", "b")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_dag(45, 2.5, seed)
        matrix = BitMatrixTCIndex.build(graph)
        for node in graph:
            assert matrix.successors(node) == reachable_from(graph, node)

    def test_successors_irreflexive(self, diamond):
        matrix = BitMatrixTCIndex.build(diamond)
        assert matrix.successors("a", reflexive=False) == {"b", "c", "d"}

    def test_unknown_nodes(self, diamond):
        matrix = BitMatrixTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            matrix.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            matrix.reachable("a", "ghost")
        with pytest.raises(NodeNotFoundError):
            matrix.successors("ghost")


class TestStorage:
    def test_quadratic_regardless_of_content(self):
        empty = BitMatrixTCIndex.build(DiGraph(nodes=range(10)))
        dense = BitMatrixTCIndex.build(random_dag(10, 4, 1))
        assert empty.storage_bits == dense.storage_bits == 100

    def test_unit_conversion(self):
        matrix = BitMatrixTCIndex.build(DiGraph(nodes=range(10)))
        assert matrix.storage_units == (100 + 31) // 32
        assert matrix.num_nodes == 10
