"""Tests for the Schubert multi-hierarchy baseline (related work)."""

import pytest

from repro.baselines.schubert import SchubertIndex, peel_forests
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.traversal import can_reach, reachable_from


class TestForestPeeling:
    def test_forests_cover_all_arcs(self, paper_dag):
        forests = peel_forests(paper_dag)
        covered = {(parent, child)
                   for forest in forests for child, parent in forest.items()}
        assert covered == set(paper_dag.arcs())

    def test_each_forest_has_unique_parents(self, paper_dag):
        for forest in peel_forests(paper_dag):
            # A forest gives each node at most one parent by construction;
            # assert parents are real graph arcs.
            for child, parent in forest.items():
                assert paper_dag.has_arc(parent, child)

    def test_number_of_forests_is_max_indegree(self, paper_dag):
        forests = peel_forests(paper_dag)
        assert len(forests) == max(paper_dag.in_degree(node)
                                   for node in paper_dag)

    def test_tree_peels_to_one_forest(self):
        tree = random_tree(30, 3)
        assert len(peel_forests(tree)) == 1


class TestQueries:
    def test_tree_is_exact(self):
        """On a tree the scheme is complete: identical to ground truth."""
        tree = random_tree(40, 5)
        index = SchubertIndex.build(tree)
        for source in tree:
            assert index.successors_within_hierarchies(source) == \
                reachable_from(tree, source)

    @pytest.mark.parametrize("seed", range(5))
    def test_sound_on_dags(self, seed):
        """Any positive answer corresponds to a real path."""
        graph = random_dag(30, 2, seed)
        index = SchubertIndex.build(graph)
        for source in graph:
            for destination in graph:
                if index.reachable(source, destination):
                    assert can_reach(graph, source, destination)

    def test_incomplete_on_mixed_paths(self):
        """A path alternating between hierarchies can be invisible."""
        # b has two parents; the arc (c, b) lands in hierarchy 2, so the
        # path r -> c -> b -> z is split across hierarchies.
        graph = DiGraph([("r", "c"), ("a", "b"), ("c", "b"), ("b", "z")])
        index = SchubertIndex.build(graph)
        missed = sum(
            1 for source in graph for destination in graph
            if can_reach(graph, source, destination)
            and not index.reachable(source, destination)
        )
        # Soundness always; completeness is allowed to fail (and the
        # construction above is designed to make it fail).
        assert missed >= 0

    def test_reflexive(self, diamond):
        index = SchubertIndex.build(diamond)
        assert index.reachable("a", "a")

    def test_unknown_nodes(self, diamond):
        index = SchubertIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.successors_within_hierarchies("ghost")


class TestStorage:
    def test_units_formula(self, diamond):
        index = SchubertIndex.build(diamond)
        assert index.storage_units == 2 * 4 * index.num_hierarchies
        assert index.num_hierarchies == 2  # d has in-degree 2

    def test_storage_grows_with_overlap(self):
        narrow = SchubertIndex.build(random_tree(50, 4))
        graph = random_dag(50, 3, 3)
        wide = SchubertIndex.build(graph)
        assert wide.num_hierarchies > narrow.num_hierarchies
        assert wide.storage_units > narrow.storage_units

    def test_empty_graph(self):
        index = SchubertIndex.build(DiGraph(nodes=["a"]))
        assert index.num_hierarchies == 1
        assert index.reachable("a", "a")
