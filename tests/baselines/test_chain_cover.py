"""Tests for the chain-decomposition baseline and Theorem 2."""

import pytest

from repro.baselines.chain_cover import (
    ChainTCIndex,
    greedy_chain_decomposition,
    optimal_chain_decomposition,
)
from repro.baselines.full_closure import FullTCIndex
from repro.core.index import IntervalTCIndex
from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph, random_dag, random_tree
from repro.graph.traversal import can_reach, reachable_from


class TestGreedyDecomposition:
    def test_partitions_nodes(self, paper_dag):
        chains = greedy_chain_decomposition(paper_dag)
        flattened = [node for chain in chains for node in chain]
        assert sorted(flattened, key=str) == sorted(paper_dag.nodes(), key=str)
        assert len(set(flattened)) == len(flattened)

    def test_chains_are_paths(self, paper_dag):
        for chain in greedy_chain_decomposition(paper_dag):
            for earlier, later in zip(chain, chain[1:]):
                assert paper_dag.has_arc(earlier, later)

    def test_path_graph_is_one_chain(self):
        chains = greedy_chain_decomposition(path_graph(6))
        assert len(chains) == 1
        assert chains[0] == [0, 1, 2, 3, 4, 5]


class TestOptimalDecomposition:
    def test_partitions_nodes(self, paper_dag):
        chains = optimal_chain_decomposition(paper_dag)
        flattened = [node for chain in chains for node in chain]
        assert sorted(flattened, key=str) == sorted(paper_dag.nodes(), key=str)

    def test_chain_links_are_reachable(self, paper_dag):
        for chain in optimal_chain_decomposition(paper_dag):
            for earlier, later in zip(chain, chain[1:]):
                assert can_reach(paper_dag, earlier, later)

    def test_minimum_count_on_known_graphs(self):
        # An antichain of k nodes needs exactly k chains (Dilworth).
        antichain = DiGraph(nodes=range(5))
        assert len(optimal_chain_decomposition(antichain)) == 5
        # A path needs exactly 1.
        assert len(optimal_chain_decomposition(path_graph(7))) == 1
        # Diamond: width 2.
        diamond = DiGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert len(optimal_chain_decomposition(diamond)) == 2

    def test_never_more_chains_than_greedy(self):
        for seed in range(5):
            graph = random_dag(30, 2, seed)
            optimal = len(optimal_chain_decomposition(graph))
            greedy = len(greedy_chain_decomposition(graph))
            assert optimal <= greedy


class TestChainIndexQueries:
    @pytest.mark.parametrize("method", ["greedy", "optimal"])
    def test_matches_ground_truth(self, method, paper_dag):
        index = ChainTCIndex.build(paper_dag, method)
        for source in paper_dag:
            assert index.successors(source) == reachable_from(paper_dag, source)

    @pytest.mark.parametrize("method", ["greedy", "optimal"])
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, method, seed):
        graph = random_dag(35, 2, seed)
        index = ChainTCIndex.build(graph, method)
        full = FullTCIndex.build(graph)
        for source in graph:
            for destination in graph:
                assert index.reachable(source, destination) == \
                    full.reachable(source, destination)

    def test_unknown_nodes(self, diamond):
        index = ChainTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.reachable("a", "ghost")
        with pytest.raises(NodeNotFoundError):
            index.successors("ghost")

    def test_unknown_method(self, diamond):
        with pytest.raises(GraphError):
            ChainTCIndex.build(diamond, "sideways")


class TestTheorem2:
    @pytest.mark.parametrize("seed", range(8))
    def test_intervals_never_exceed_chain_entries(self, seed):
        graph = random_dag(40, 1.5 + (seed % 3), seed)
        intervals = IntervalTCIndex.build(graph, gap=1).num_intervals
        for method in ("greedy", "optimal"):
            entries = ChainTCIndex.build(graph, method).num_entries
            assert intervals <= entries, (seed, method)

    def test_tree_separation(self):
        """Section 5: trees separate the two schemes by a large margin."""
        tree = random_tree(120, 3)
        intervals = IntervalTCIndex.build(tree, gap=1).num_intervals
        entries = ChainTCIndex.build(tree, "optimal").num_entries
        assert intervals == 120
        assert entries > intervals

    def test_chain_graph_ties(self):
        """On a single path both schemes cost one record per node."""
        graph = path_graph(10)
        intervals = IntervalTCIndex.build(graph, gap=1).num_intervals
        entries = ChainTCIndex.build(graph, "greedy").num_entries
        assert intervals == entries == 10


class TestStorageAccounting:
    def test_entries_count(self, chain5):
        index = ChainTCIndex.build(chain5, "greedy")
        assert index.num_chains == 1
        assert index.num_entries == 5          # one own-position entry per node
        assert index.storage_units == 10
