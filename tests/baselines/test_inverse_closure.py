"""Tests for the inverse (complement) closure of Figure 3.10."""

import pytest

from repro.baselines.full_closure import FullTCIndex
from repro.baselines.inverse_closure import InverseTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import topological_order


class TestCorrectness:
    def test_diamond(self, diamond):
        inverse = InverseTCIndex.build(diamond)
        full = FullTCIndex.build(diamond)
        for source in diamond:
            for destination in diamond:
                assert inverse.reachable(source, destination) == \
                    full.reachable(source, destination)

    @pytest.mark.parametrize("seed,degree", [(0, 1), (1, 2), (2, 4)])
    def test_random_graphs(self, seed, degree):
        graph = random_dag(40, degree, seed)
        inverse = InverseTCIndex.build(graph)
        full = FullTCIndex.build(graph)
        for source in graph:
            for destination in graph:
                assert inverse.reachable(source, destination) == \
                    full.reachable(source, destination)

    def test_explicit_order_accepted(self, diamond):
        order = topological_order(diamond)
        inverse = InverseTCIndex.build(diamond, order)
        assert inverse.reachable("a", "d")

    def test_unknown_nodes(self, diamond):
        inverse = InverseTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            inverse.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            inverse.reachable("a", "ghost")


class TestStorage:
    def test_total_order_stores_nothing(self, chain5):
        """A chain reaches everything admissible: zero non-reachable pairs."""
        inverse = InverseTCIndex.build(chain5)
        assert inverse.num_pairs == 0
        assert inverse.storage_units == 0

    def test_antichain_stores_all_pairs(self):
        """No arcs at all: every ordered pair is non-reachable."""
        graph = DiGraph(nodes=range(6))
        inverse = InverseTCIndex.build(graph)
        assert inverse.num_pairs == 6 * 5 // 2

    def test_complement_identity(self):
        """reachable pairs + stored pairs = all admissible ordered pairs."""
        graph = random_dag(30, 2, 5)
        inverse = InverseTCIndex.build(graph)
        full = FullTCIndex.build(graph)
        n = graph.num_nodes
        assert full.num_pairs + inverse.num_pairs == n * (n - 1) // 2

    def test_size_falls_with_degree(self):
        sizes = [InverseTCIndex.build(random_dag(60, degree, 9)).num_pairs
                 for degree in (1, 3, 6)]
        assert sizes[0] > sizes[1] > sizes[2]
