"""Tests for the pointer-chasing (no-index) baseline."""

import pytest

from repro.baselines.pointer_chasing import PointerChasingIndex
from repro.errors import NodeNotFoundError
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


class TestCorrectness:
    def test_diamond(self, diamond):
        chaser = PointerChasingIndex.build(diamond)
        assert chaser.reachable("a", "d")
        assert not chaser.reachable("d", "a")
        assert chaser.reachable("c", "c")

    @pytest.mark.parametrize("seed", range(3))
    def test_random(self, seed):
        graph = random_dag(40, 2, seed)
        chaser = PointerChasingIndex.build(graph)
        for node in list(graph.nodes())[:15]:
            assert chaser.successors(node) == reachable_from(graph, node)

    def test_unknown(self, diamond):
        chaser = PointerChasingIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            chaser.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            chaser.successors("ghost")


class TestWorkCounters:
    def test_counters_accumulate(self, paper_dag):
        chaser = PointerChasingIndex.build(paper_dag)
        chaser.reachable("a", "h")
        chaser.reachable("a", "h")
        assert chaser.stats.queries == 2
        assert chaser.stats.nodes_visited > 0
        assert chaser.stats.arcs_followed > 0

    def test_reflexive_query_is_free(self, paper_dag):
        chaser = PointerChasingIndex.build(paper_dag)
        chaser.reachable("a", "a")
        assert chaser.stats.queries == 1
        assert chaser.stats.nodes_visited == 0

    def test_early_exit_cheaper_than_full_scan(self, paper_dag):
        quick = PointerChasingIndex.build(paper_dag)
        assert quick.reachable("a", "b")        # immediate hit
        exhaustive = PointerChasingIndex.build(paper_dag)
        assert not exhaustive.reachable("b", "g")   # must exhaust b's cone
        assert quick.stats.arcs_followed < exhaustive.stats.arcs_followed

    def test_reset(self, paper_dag):
        chaser = PointerChasingIndex.build(paper_dag)
        chaser.reachable("a", "h")
        chaser.stats.reset()
        assert chaser.stats.queries == 0
        assert chaser.stats.nodes_visited == 0

    def test_zero_storage(self, paper_dag):
        assert PointerChasingIndex.build(paper_dag).storage_units == 0
