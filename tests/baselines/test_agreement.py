"""Property test: every exact index answers every query identically."""

from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BitMatrixTCIndex,
    ChainTCIndex,
    FullTCIndex,
    InverseTCIndex,
    PointerChasingIndex,
)
from repro.core.condensation import CondensedIndex
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.testing.oracle import SetClosureOracle


@st.composite
def small_dags(draw):
    n = draw(st.integers(1, 10))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=25))
    graph = DiGraph(nodes=range(n))
    for a, b in pairs:
        if a != b:
            graph.add_arc(min(a, b), max(a, b))
    return graph


@st.composite
def small_digraphs(draw):
    """Arbitrary directed graphs — cycles (and self-reaching SCCs) allowed."""
    n = draw(st.integers(1, 9))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=25))
    graph = DiGraph(nodes=range(n))
    for a, b in pairs:
        if a != b:
            graph.add_arc(a, b)
    return graph


@settings(max_examples=40)
@given(small_dags(), st.integers(0, 10 ** 6))
def test_all_exact_indexes_agree(graph, probe_seed):
    """Nine implementations, one truth."""
    indexes = [
        IntervalTCIndex.build(graph, gap=1),
        IntervalTCIndex.build(graph, gap=8, merge=True),
        IntervalTCIndex.build(graph, gap=4).freeze(),
        FullTCIndex.build(graph),
        InverseTCIndex.build(graph),
        BitMatrixTCIndex.build(graph),
        PointerChasingIndex.build(graph),
        ChainTCIndex.build(graph, "greedy"),
        CondensedIndex.build(graph),
    ]
    nodes = list(graph.nodes())
    for source in nodes:
        for destination in nodes:
            answers = {index.reachable(source, destination) for index in indexes}
            assert len(answers) == 1, (
                f"disagreement on {source} ->* {destination}: "
                f"{[type(index).__name__ for index in indexes]}"
            )


@settings(max_examples=40)
@given(small_digraphs())
def test_condensation_path_agrees_on_cyclic_input(graph):
    """Cyclic input -> SCC condensation -> interval index == BFS closure."""
    condensed = CondensedIndex.build(graph)
    oracle = SetClosureOracle(arcs=graph.arcs(), nodes=graph.nodes())
    nodes = list(graph.nodes())
    for source in nodes:
        expected = oracle.successors(source)
        assert set(condensed.successors(source)) == expected
        for destination in nodes:
            assert condensed.reachable(source, destination) \
                == (destination in expected)
