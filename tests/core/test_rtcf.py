"""RTCF binary container: round-trip fidelity, bit-stability, zero-copy
semantics, staleness metadata, and the corruption matrix.

The corruption tests mirror the durability suite's style: parametrized
truncation at every structural boundary plus targeted bit flips, each
required to raise the typed :class:`~repro.errors.CorruptFileError`
diagnosis — never a silently wrong index.
"""

import json
import os
import random

import pytest

from repro.core.frozen import FrozenTCIndex, default_backend
from repro.core.index import IntervalTCIndex
from repro.core.rtcf import (MAGIC, MappedFrozenTCIndex, load_rtcf,
                             rtcf_bytes, save_rtcf, sniff_rtcf, verify_rtcf)
from repro.core.serialize import save_frozen_index
from repro.errors import (CorruptFileError, IndexStateError,
                          NodeNotFoundError, ReproError)
from repro.factory import open_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.testing.faults import flip_byte

HAVE_NUMPY = default_backend() == "numpy"


def small_graph() -> DiGraph:
    return DiGraph(arcs=[("a", "b"), ("b", "c"), ("b", "d"), ("a", "e"),
                         ("e", "d"), ("c", "f")])


def int_graph(num_nodes: int = 120, seed: int = 11) -> DiGraph:
    return random_dag(num_nodes, 2.5, random.Random(seed))


def saved(tmp_path, graph, name="engine.rtcf"):
    path = str(tmp_path / name)
    frozen = IntervalTCIndex.build(graph).freeze()
    save_rtcf(frozen, path)
    return path, frozen


class TestRoundTrip:
    @pytest.mark.parametrize("graph_factory", [small_graph, int_graph])
    def test_queries_survive_the_cycle(self, tmp_path, graph_factory):
        graph = graph_factory()
        path, frozen = saved(tmp_path, graph)
        reopened = load_rtcf(path)
        nodes = sorted(graph.nodes(), key=repr)
        for node in nodes:
            assert reopened.successors(node) == frozen.successors(node)
            assert reopened.predecessors(node) == frozen.predecessors(node)
        pairs = [(s, d) for s in nodes[:15] for d in nodes[:15]]
        assert reopened.reachable_many(pairs) == frozen.reachable_many(pairs)
        assert len(reopened) == len(frozen)
        assert set(reopened.nodes()) == set(frozen.nodes())

    def test_save_load_save_is_bit_stable(self, tmp_path):
        path, frozen = saved(tmp_path, int_graph())
        blob = rtcf_bytes(frozen)
        assert blob == rtcf_bytes(load_rtcf(path))
        # and through the generic frozen saver too
        second = str(tmp_path / "again.rtcf")
        save_frozen_index(load_rtcf(path), second, format="rtcf")
        assert open(second, "rb").read() == blob

    def test_backends_write_identical_bytes(self, tmp_path):
        graph = int_graph(60)
        numpy_view = IntervalTCIndex.build(graph).freeze(backend=None)
        array_view = IntervalTCIndex.build(graph).freeze(backend="array")
        assert rtcf_bytes(numpy_view) == rtcf_bytes(array_view)

    def test_array_backend_load(self, tmp_path):
        path, frozen = saved(tmp_path, small_graph())
        rehydrated = load_rtcf(path, backend="array")
        assert not isinstance(rehydrated, MappedFrozenTCIndex)
        assert rehydrated.successors("a") == frozen.successors("a")

    def test_empty_index(self, tmp_path):
        path, frozen = saved(tmp_path, DiGraph())
        reopened = load_rtcf(path)
        assert len(reopened) == 0
        assert list(reopened.nodes()) == []
        assert "ghost" not in reopened

    def test_sniff(self, tmp_path):
        path, _ = saved(tmp_path, small_graph())
        assert sniff_rtcf(path)
        other = tmp_path / "not.rtcf"
        other.write_text("{}")
        assert not sniff_rtcf(str(other))
        assert not sniff_rtcf(str(tmp_path / "absent.rtcf"))

    def test_fractional_numbering_is_rejected(self, tmp_path):
        index = IntervalTCIndex.build(small_graph(), numbering="fractional",
                                      gap=4)
        index.add_node("g", ["a"])  # force a Fraction into the numbering
        with pytest.raises(ReproError, match="fractional"):
            rtcf_bytes(index.freeze())

    def test_unknown_format_name_rejected(self, tmp_path):
        frozen = IntervalTCIndex.build(small_graph()).freeze()
        with pytest.raises(ReproError, match="unknown frozen format"):
            save_frozen_index(frozen, str(tmp_path / "x.bin"), format="cbor")


@pytest.mark.skipif(not HAVE_NUMPY, reason="zero-copy path needs numpy")
class TestMappedView:
    def test_open_index_routes_by_magic_and_extension(self, tmp_path):
        path, frozen = saved(tmp_path, small_graph())
        engine = open_index(path)
        assert isinstance(engine, MappedFrozenTCIndex)
        assert engine.successors("a") == frozen.successors("a")
        # extensionless file still routes by magic
        plain = str(tmp_path / "noext")
        os.rename(path, plain)
        assert isinstance(open_index(plain), MappedFrozenTCIndex)

    def test_open_index_refuses_mutable_coercion(self, tmp_path):
        path, _ = saved(tmp_path, small_graph())
        with pytest.raises(ReproError, match="frozen"):
            open_index(path, engine="interval")

    def test_int_label_point_queries_use_the_stored_lut(self, tmp_path):
        graph = int_graph(80)
        path, frozen = saved(tmp_path, graph)
        mapped = load_rtcf(path)
        assert mapped._lut is not None
        nodes = sorted(graph.nodes())
        for node in nodes[:20]:
            assert mapped.reachable(nodes[0], node) == \
                frozen.reachable(nodes[0], node)
        assert nodes[0] in mapped and (max(nodes) + 7) not in mapped
        with pytest.raises(NodeNotFoundError):
            mapped.reachable(max(nodes) + 7, nodes[0])
        with pytest.raises(NodeNotFoundError):
            mapped.reachable(nodes[0], -3)

    def test_verified_load_and_report(self, tmp_path):
        path, _ = saved(tmp_path, int_graph(50))
        assert load_rtcf(path, verify=True).num_intervals > 0
        report = verify_rtcf(path)
        assert report["num_nodes"] == 50
        assert report["int_labels"] and report["has_lut"]
        assert set(report["sections"]) >= {"labels", "numbers", "offsets",
                                           "lows", "highs", "lut"}

    def test_close_releases_the_map(self, tmp_path):
        path, _ = saved(tmp_path, small_graph())
        mapped = load_rtcf(path)
        assert mapped.reachable("a", "f")
        del mapped  # the arrays hold buffer references; drop them first
        second = load_rtcf(path)
        second.close()


class TestStalenessMetadata:
    """Satellite regression: epoch/detach semantics survive the disk."""

    @pytest.mark.parametrize("format", ["json", "rtcf"])
    def test_epoch_round_trips(self, tmp_path, format):
        index = IntervalTCIndex.build(small_graph())
        index.add_node("g", ["a"])
        index.add_arc("g", "b")
        epoch_at_freeze = index.epoch
        assert epoch_at_freeze > 0
        path = str(tmp_path / f"engine.{format}")
        save_frozen_index(index.freeze(), path, format=format)
        reopened = open_index(path)
        assert reopened._source_epoch == epoch_at_freeze
        assert reopened.lag() == 0
        assert not reopened.is_stale()

    @pytest.mark.parametrize("format", ["json", "rtcf"])
    def test_reloaded_view_is_detached(self, tmp_path, format):
        """A reloaded snapshot has no source: later mutations of the
        original index must not stale it, and queries keep working."""
        index = IntervalTCIndex.build(small_graph())
        path = str(tmp_path / f"engine.{format}")
        save_frozen_index(index.freeze(), path, format=format)
        reopened = open_index(path)
        index.add_node("zz", ["a"])  # would stale an attached view
        assert not reopened.is_stale()
        assert reopened.reachable("a", "f")
        detached = reopened.detach()
        assert not detached.is_stale()

    def test_attached_view_still_stales(self):
        """Contrast case: the in-memory contract is unchanged."""
        index = IntervalTCIndex.build(small_graph())
        frozen = index.freeze()
        index.add_node("zz", ["a"])
        assert frozen.is_stale()
        with pytest.raises(IndexStateError):
            frozen.reachable("a", "f")


def _section_boundaries(path):
    """Every structural offset worth cutting at: header, table, each
    section's start, and each section's last byte."""
    report = verify_rtcf(path)
    size = os.path.getsize(path)
    boundaries = {4, 20, 39}  # inside magic / header / section table
    for row in report["sections"].values():
        boundaries.add(row["offset"])
        if row["nbytes"]:
            boundaries.add(row["offset"] + row["nbytes"] - 1)
    return sorted(cut for cut in boundaries if cut < size)


class TestCorruption:
    """Damage must produce a typed diagnosis, never a wrong answer."""

    def test_truncation_at_every_section_boundary(self, tmp_path):
        path, _ = saved(tmp_path, int_graph(40, seed=3))
        for cut in _section_boundaries(path):
            damaged = str(tmp_path / f"cut-{cut}.rtcf")
            with open(path, "rb") as source:
                blob = source.read()
            with open(damaged, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(CorruptFileError):
                load_rtcf(damaged, verify=True)

    def test_magic_flip(self, tmp_path):
        path, _ = saved(tmp_path, small_graph())
        flip_byte(path, 0)
        with pytest.raises(CorruptFileError, match="magic"):
            load_rtcf(path)
        with pytest.raises(CorruptFileError):
            open_index(str(tmp_path / "engine.rtcf"))

    @pytest.mark.parametrize("offset,field", [
        (4, "version"), (8, "num_nodes"), (16, "num_intervals"),
        (32, "section_count")])
    def test_header_field_flip_fails_the_header_crc(self, tmp_path,
                                                    offset, field):
        path, _ = saved(tmp_path, small_graph())
        flip_byte(path, offset, 0x10)
        with pytest.raises(CorruptFileError):
            load_rtcf(path)

    def test_section_table_flip_fails_the_header_crc(self, tmp_path):
        path, _ = saved(tmp_path, small_graph())
        flip_byte(path, 48, 0x04)  # inside the first section entry
        with pytest.raises(CorruptFileError, match="checksum"):
            load_rtcf(path)

    def test_payload_flip_is_caught_by_verification(self, tmp_path):
        path, _ = saved(tmp_path, int_graph(40, seed=5))
        report = verify_rtcf(path)
        target = report["sections"]["lows"]
        flip_byte(path, target["offset"] + target["nbytes"] // 2, 0x20)
        with pytest.raises(CorruptFileError, match="checksum"):
            load_rtcf(path, verify=True)
        with pytest.raises(CorruptFileError):
            verify_rtcf(path)

    def test_not_rtcf_at_all(self, tmp_path):
        path = str(tmp_path / "garbage.rtcf")
        with open(path, "wb") as handle:
            handle.write(b"RTCF")  # magic alone, no header
        with pytest.raises(CorruptFileError, match="truncated header"):
            load_rtcf(path)

    def test_json_frozen_is_not_sniffed_as_rtcf(self, tmp_path):
        path = str(tmp_path / "engine.json")
        save_frozen_index(IntervalTCIndex.build(small_graph()).freeze(),
                          path)
        assert not sniff_rtcf(path)
        assert isinstance(open_index(path), FrozenTCIndex)

    def test_corrupt_error_is_typed(self):
        assert issubclass(CorruptFileError, ReproError)


class TestDurabilitySidecar:
    def test_checkpoint_sidecar_round_trip_and_rotation(self, tmp_path):
        from repro.durability import DurableTCIndex
        directory = str(tmp_path / "store.d")
        with DurableTCIndex.open(directory, keep_checkpoints=1) as store:
            store.add_node("a", [])
            store.add_node("b", ["a"])
            first = store.checkpoint(frozen_sidecar=True)
            sidecar = first[:-len(".json")] + ".rtcf"
            assert os.path.exists(sidecar)
            mapped = open_index(sidecar)
            assert mapped.successors("a") == {"a", "b"}
            store.add_node("c", ["b"])
            store.checkpoint(frozen_sidecar=True)
        remaining = [name for name in os.listdir(directory)
                     if name.endswith(".rtcf")]
        assert len(remaining) == 1  # rotation removed the stale sidecar
        assert os.path.basename(sidecar) not in remaining
