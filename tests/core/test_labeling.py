"""Tests for postorder numbering and interval propagation (Sections 3.1-3.2)."""

import pytest

from repro.core.intervals import Interval
from repro.core.labeling import (
    assign_postorder,
    check_laminar,
    label_graph,
    merge_all,
    propagate_intervals,
)
from repro.core.tree_cover import build_tree_cover
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.traversal import reachable_from


def build_labeling(graph, gap=1, merge=False):
    cover = build_tree_cover(graph)
    return label_graph(graph, cover, gap, merge=merge), cover


class TestTreeNumbering:
    """Section 3.1: for a tree the scheme is one interval per node."""

    def test_postorder_numbers_unique_and_positive(self, chain5):
        labeling, _ = build_labeling(chain5)
        numbers = list(labeling.postorder.values())
        assert len(set(numbers)) == len(numbers)
        assert all(number >= 1 for number in numbers)

    def test_chain_numbering(self, chain5):
        labeling, _ = build_labeling(chain5)
        # Postorder of a chain visits the deepest node first.
        assert labeling.postorder[4] == 1
        assert labeling.postorder[0] == 5
        assert labeling.tree_interval[0] == Interval(1, 5)
        assert labeling.tree_interval[4] == Interval(1, 1)

    def test_one_interval_per_tree_node(self):
        tree = random_tree(60, 3)
        labeling, _ = build_labeling(tree)
        assert labeling.total_intervals == 60
        assert labeling.storage_units == 120

    def test_lemma_1_single_range_comparison(self):
        """Lemma 1: b reachable from a iff postorder(b) in a's tree interval."""
        tree = random_tree(40, 7)
        labeling, _ = build_labeling(tree)
        for a in tree:
            reach = reachable_from(tree, a)
            span = labeling.tree_interval[a]
            for b in tree:
                assert (labeling.postorder[b] in span) == (b in reach)

    def test_gap_scales_numbers(self, chain5):
        labeling, _ = build_labeling(chain5, gap=10)
        assert labeling.postorder[4] == 10
        assert labeling.postorder[0] == 50
        # Leaf reserves the gap below its number.
        assert labeling.tree_interval[4] == Interval(1, 10)

    def test_bad_gap(self, chain5):
        cover = build_tree_cover(chain5)
        with pytest.raises(GraphError):
            assign_postorder(cover, gap=0)


class TestLaminarity:
    @pytest.mark.parametrize("seed", range(4))
    def test_tree_intervals_are_laminar(self, seed):
        graph = random_dag(50, 2, seed)
        labeling, _ = build_labeling(graph)
        check_laminar(labeling)

    @pytest.mark.parametrize("gap", [1, 7, 64])
    def test_laminar_with_gaps(self, gap, paper_dag):
        labeling, _ = build_labeling(paper_dag, gap=gap)
        check_laminar(labeling)

    def test_laminar_check_detects_violation(self, paper_dag):
        labeling, _ = build_labeling(paper_dag)
        root_bounds = labeling.tree_interval["a"]  # spans every node
        assert root_bounds.width > 2
        # Manufacture an interval crossing the root's: starts inside, ends
        # beyond.
        labeling.tree_interval["bogus"] = Interval(root_bounds.lo + 1,
                                                   root_bounds.hi + 5)
        with pytest.raises(GraphError):
            check_laminar(labeling)


class TestPropagation:
    def test_diamond_closure(self, diamond):
        labeling, _ = build_labeling(diamond)
        for source in diamond:
            reach = reachable_from(diamond, source)
            for destination in diamond:
                covered = labeling.intervals[source].covers(
                    labeling.postorder[destination])
                assert covered == (destination in reach)

    def test_non_tree_intervals_counted(self, diamond):
        labeling, _ = build_labeling(diamond)
        # One non-tree arc into d forces exactly one extra interval at the
        # non-tree parent (inherited by nobody else: 'a' subsumes it).
        assert labeling.total_intervals == 5

    def test_tree_children_add_nothing(self):
        tree = random_tree(30, 9)
        labeling, _ = build_labeling(tree)
        assert all(len(labeling.intervals[node]) == 1 for node in tree)

    @pytest.mark.parametrize("seed,degree", [(0, 1), (1, 2), (2, 3), (3, 4)])
    def test_closure_correct_on_random_dags(self, seed, degree):
        graph = random_dag(45, degree, seed)
        labeling, _ = build_labeling(graph)
        for source in graph:
            reach = reachable_from(graph, source)
            for destination in graph:
                assert labeling.intervals[source].covers(
                    labeling.postorder[destination]) == (destination in reach)

    def test_propagation_is_idempotent(self, paper_dag):
        cover = build_tree_cover(paper_dag)
        labeling = assign_postorder(cover)
        propagate_intervals(paper_dag, cover, labeling)
        before = labeling.total_intervals
        propagate_intervals(paper_dag, cover, labeling)
        assert labeling.total_intervals == before


class TestMergeAll:
    def test_merge_reduces_or_keeps(self, paper_dag):
        labeling, _ = build_labeling(paper_dag)
        before = labeling.total_intervals
        saved = merge_all(labeling)
        assert saved >= 0
        assert labeling.total_intervals == before - saved

    def test_merge_preserves_answers(self):
        graph = random_dag(40, 3, 9)
        plain, _ = build_labeling(graph)
        merged, _ = build_labeling(graph, merge=True)
        for source in graph:
            for destination in graph:
                number = plain.postorder[destination]
                assert plain.intervals[source].covers(number) == \
                    merged.intervals[source].covers(merged.postorder[destination])


class TestNodeOfNumber:
    def test_inverse_map(self, paper_dag):
        labeling, _ = build_labeling(paper_dag)
        for node, number in labeling.postorder.items():
            assert labeling.node_of_number[number] == node
