"""Executable versions of the paper's analytical storage claims."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    bipartite_interval_count,
    bipartite_worst_case_peak,
    chain_interval_count,
    intermediary_interval_count,
    inverse_closure_size,
    maximum_closure_pairs,
    measured_interval_count,
    paper_intermediary_formula,
    tree_interval_count,
    tree_storage_units,
)
from repro.baselines.full_closure import FullTCIndex
from repro.baselines.inverse_closure import InverseTCIndex
from repro.errors import ReproError
from repro.graph.generators import (
    bipartite_with_intermediary,
    bipartite_worst_case,
    path_graph,
    random_dag,
    random_tree,
)


class TestTreeBound:
    @pytest.mark.parametrize("n", [1, 2, 10, 57])
    def test_trees_match_formula(self, n):
        tree = random_tree(n, n)
        assert measured_interval_count(tree) == tree_interval_count(n)
        assert tree_storage_units(n) == 2 * n

    def test_chains_match_formula(self):
        assert measured_interval_count(path_graph(23)) == chain_interval_count(23)


class TestBipartiteFormulas:
    @pytest.mark.parametrize("m,k", [(1, 1), (2, 3), (3, 4), (5, 5),
                                     (15, 16), (2, 9), (9, 2)])
    def test_worst_case_exact(self, m, k):
        measured = measured_interval_count(bipartite_worst_case(m, k))
        assert measured == bipartite_interval_count(m, k)

    @pytest.mark.parametrize("m,k", [(1, 1), (2, 3), (3, 4), (5, 5), (15, 16)])
    def test_intermediary_exact(self, m, k):
        measured = measured_interval_count(bipartite_with_intermediary(m, k))
        assert measured == intermediary_interval_count(m, k)

    def test_peak_is_quadratic(self):
        # The paper: maximum (n+1)^2/4 at n = 2m+1.
        for m in (2, 5, 10):
            n = 2 * m + 1
            peak = bipartite_worst_case_peak(n)
            measured = measured_interval_count(bipartite_worst_case(m, m + 1))
            # The formula is the paper's rounding of the exact count;
            # they agree to within the linear boundary terms.
            assert abs(measured - peak) <= 2 * n

    def test_paper_2n_minus_m_formula(self):
        # The paper's accounting and ours agree up to the two boundary
        # intervals it folds differently.
        for m, k in [(3, 4), (15, 16)]:
            n = m + k
            ours = intermediary_interval_count(m, k)
            theirs = paper_intermediary_formula(n, m)
            assert abs(ours - theirs) <= 2

    def test_hub_beats_direct_asymptotically(self):
        for m in (5, 10, 20):
            assert intermediary_interval_count(m, m) * m < \
                bipartite_interval_count(m, m) * 3

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ReproError):
            bipartite_interval_count(0, 3)
        with pytest.raises(ReproError):
            intermediary_interval_count(3, 0)


class TestClosureAccounting:
    @given(st.integers(0, 200))
    def test_maximum_pairs(self, n):
        assert maximum_closure_pairs(n) == n * (n - 1) // 2

    @settings(max_examples=15)
    @given(st.integers(2, 35), st.integers(0, 1000))
    def test_inverse_complement_identity(self, n, seed):
        graph = random_dag(n, min(2.0, (n - 1) / 2), seed)
        closure_pairs = FullTCIndex.build(graph).num_pairs
        predicted = inverse_closure_size(n, closure_pairs)
        assert predicted == InverseTCIndex.build(graph).num_pairs

    def test_impossible_closure_rejected(self):
        with pytest.raises(ReproError):
            inverse_closure_size(3, 100)
