"""Unit tests for the Section 4 incremental update algorithms."""

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.tree_cover import VIRTUAL_ROOT
from repro.core.updates import claim_slot, free_ranges_under
from repro.errors import (
    ArcNotFoundError,
    CycleError,
    GraphError,
    IndexStateError,
    NodeNotFoundError,
    NumberingExhaustedError,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_hierarchy


def build(graph, **kwargs):
    kwargs.setdefault("gap", 16)
    return IntervalTCIndex.build(graph, **kwargs)


class TestAddNode:
    def test_add_leaf(self, paper_dag):
        index = build(paper_dag)
        index.add_node("new", parents=["b"])
        assert index.reachable("b", "new")
        assert index.reachable("a", "new")
        assert not index.reachable("c", "new")
        index.check_invariants()
        index.verify()

    def test_add_root(self, paper_dag):
        index = build(paper_dag)
        index.add_node("isolated")
        assert index.reachable("isolated", "isolated")
        assert not index.reachable("a", "isolated")
        assert not index.reachable("isolated", "a")
        index.verify()

    def test_add_with_multiple_parents(self, paper_dag):
        index = build(paper_dag)
        index.add_node("multi", parents=["d", "f"])
        assert index.reachable("d", "multi")
        assert index.reachable("f", "multi")
        assert index.reachable("a", "multi")
        assert index.reachable("c", "multi")  # via f
        index.verify()

    def test_existing_labels_untouched_by_tree_insert(self, paper_dag):
        index = build(paper_dag)
        before = {node: index.intervals[node].copy() for node in index.nodes()}
        index.add_node("cheap", parents=["e"])
        for node, intervals in before.items():
            assert index.intervals[node] == intervals, node

    def test_chain_of_inserts(self, diamond):
        index = build(diamond)
        parent = "d"
        for step in range(20):
            child = ("chain", step)
            index.add_node(child, parents=[parent])
            parent = child
        assert index.reachable("a", ("chain", 19))
        index.check_invariants()
        index.verify()

    def test_duplicate_node_rejected(self, diamond):
        index = build(diamond)
        with pytest.raises(IndexStateError):
            index.add_node("a")

    def test_unknown_parent_rejected(self, diamond):
        index = build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.add_node("new", parents=["ghost"])

    def test_duplicate_parents_rejected(self, diamond):
        index = build(diamond)
        with pytest.raises(GraphError):
            index.add_node("new", parents=["b", "b"])

    def test_insert_into_empty_index(self):
        index = build(DiGraph())
        index.add_node("first")
        index.add_node("second", parents=["first"])
        assert index.reachable("first", "second")
        index.verify()


class TestNumberingExhaustion:
    def test_gap_1_exhausts_and_auto_renumbers(self, diamond):
        index = IntervalTCIndex.build(diamond, gap=1)
        index.add_node("x", parents=["d"])  # no free slot under a gap-1 leaf
        assert index.reachable("a", "x")
        assert index.gap >= 2  # auto-renumber widened the stride
        index.verify()

    def test_auto_renumber_disabled_raises(self, diamond):
        index = IntervalTCIndex.build(diamond, gap=1, auto_renumber=False)
        with pytest.raises(NumberingExhaustedError):
            index.add_node("x", parents=["d"])

    def test_exhaustion_of_one_parent_slot(self):
        index = IntervalTCIndex.build(DiGraph(nodes=["p"]), gap=4,
                                      auto_renumber=False)
        added = 0
        with pytest.raises(NumberingExhaustedError):
            for step in range(10):
                index.add_node(("c", step), parents=["p"])
                added += 1
        assert 1 <= added < 10
        index.verify()  # failed insert must not corrupt the index

    def test_manual_renumber_restores_headroom(self):
        index = IntervalTCIndex.build(DiGraph(nodes=["p"]), gap=4,
                                      auto_renumber=False)
        for step in range(2):
            index.add_node(("c", step), parents=["p"])
        # Each sibling insertion halves the remaining free range under the
        # parent, so k inserts need a stride of at least ~2^k.
        index.renumber(gap=4096)
        for step in range(2, 12):
            index.add_node(("c", step), parents=["p"])
        index.verify()


class TestFreeRanges:
    def test_virtual_root_always_has_room(self, diamond):
        index = build(diamond)
        ranges = free_ranges_under(index, VIRTUAL_ROOT)
        assert len(ranges) == 1
        lo, hi = ranges[0]
        assert lo > max(index.used_numbers)

    def test_leaf_reserve(self, chain5):
        index = IntervalTCIndex.build(chain5, gap=10)
        # Node 4 is the deepest leaf: interval [1, 10], own number 10.
        ranges = free_ranges_under(index, 4)
        assert ranges == [(1, 9)]

    def test_claim_slot_midpoint(self, chain5):
        index = IntervalTCIndex.build(chain5, gap=10)
        number, interval = claim_slot(index, 4)
        assert 1 <= number <= 9
        assert interval.hi == number
        assert interval.lo == 1

    def test_free_ranges_disjoint_from_used(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag, gap=8)
        for node in index.nodes():
            for lo, hi in free_ranges_under(index, node):
                for used in index.used_numbers:
                    assert not (lo <= used <= hi)


class TestAddArc:
    def test_basic_propagation(self, paper_dag):
        index = build(paper_dag)
        assert not index.reachable("d", "h")
        index.add_arc("d", "h")
        assert index.reachable("d", "h")
        assert index.reachable("b", "h")   # b -> d -> h
        index.verify()

    def test_cycle_rejected(self, chain5):
        index = build(chain5)
        with pytest.raises(CycleError):
            index.add_arc(4, 0)
        index.verify()  # rejection must leave the index untouched

    def test_self_loop_rejected(self, diamond):
        index = build(diamond)
        with pytest.raises(GraphError):
            index.add_arc("a", "a")

    def test_existing_arc_is_noop(self, diamond):
        index = build(diamond)
        before = index.num_intervals
        index.add_arc("a", "b")
        assert index.num_intervals == before
        index.verify()

    def test_unknown_endpoints(self, diamond):
        index = build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.add_arc("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.add_arc("a", "ghost")

    def test_subsumption_cutoff_stops_propagation(self, paper_dag):
        """Refinement: predecessors that already subsume gain no intervals."""
        index = build(paper_dag)
        index.add_node("z", parents=["e"])
        before_a = index.intervals["a"].copy()
        before_b = index.intervals["b"].copy()
        index.add_arc("z", "h")  # z -> h; but e (and all above) reach h already
        assert index.intervals["a"] == before_a
        assert index.intervals["b"] == before_b
        index.verify()

    def test_redundant_arc_changes_nothing(self, paper_dag):
        index = build(paper_dag)
        before = index.num_intervals
        index.add_arc("a", "h")  # a already reaches h
        assert index.num_intervals == before
        index.verify()


class TestDeleteArc:
    def test_delete_non_tree_arc(self, diamond):
        index = build(diamond)
        tree_parent = index.cover.parent["d"]
        other = ({"b", "c"} - {tree_parent}).pop()
        index.remove_arc(other, "d")
        assert index.reachable("a", "d")       # still via tree parent
        assert not index.reachable(other, "d")
        index.check_invariants()
        index.verify()

    def test_delete_tree_arc(self, diamond):
        index = build(diamond)
        tree_parent = index.cover.parent["d"]
        other = ({"b", "c"} - {tree_parent}).pop()
        index.remove_arc(tree_parent, "d")
        assert index.reachable(other, "d")     # re-hung, still reachable via other
        assert not index.reachable(tree_parent, "d")
        assert index.reachable("a", "d")
        index.check_invariants()
        index.verify()

    def test_delete_tree_arc_detaches_subtree(self, chain5):
        index = build(chain5)
        index.remove_arc(1, 2)
        assert not index.reachable(0, 2)
        assert not index.reachable(1, 4)
        assert index.reachable(2, 4)           # subtree internally intact
        assert index.cover.parent[2] is VIRTUAL_ROOT
        index.check_invariants()
        index.verify()

    def test_subtree_numbers_move_above_old_max(self, chain5):
        index = build(chain5)
        old_max = max(index.used_numbers)
        index.remove_arc(0, 1)
        for node in (1, 2, 3, 4):
            assert index.postorder[node] > old_max

    def test_delete_missing_arc(self, diamond):
        index = build(diamond)
        with pytest.raises(ArcNotFoundError):
            index.remove_arc("b", "c")

    def test_reinsert_after_tree_delete(self, chain5):
        index = build(chain5)
        index.remove_arc(1, 2)
        index.add_arc(1, 2)
        assert index.reachable(0, 4)
        index.check_invariants()
        index.verify()


class TestRemoveNode:
    def test_remove_leaf(self, diamond):
        index = build(diamond)
        index.remove_node("d")
        assert "d" not in index
        assert index.successors("a") == {"a", "b", "c"}
        index.check_invariants()
        index.verify()

    def test_remove_internal_node(self, paper_dag):
        index = build(paper_dag)
        index.remove_node("c")
        assert "c" not in index
        assert index.reachable("a", "e")        # via b
        assert not index.reachable("a", "f")    # only path was through c
        index.check_invariants()
        index.verify()

    def test_remove_root(self, paper_dag):
        index = build(paper_dag)
        index.remove_node("a")
        assert not index.reachable("b", "c")
        assert index.reachable("b", "h")
        index.check_invariants()
        index.verify()

    def test_remove_unknown(self, diamond):
        with pytest.raises(NodeNotFoundError):
            build(diamond).remove_node("ghost")

    def test_number_retired(self, diamond):
        index = build(diamond)
        number = index.postorder["d"]
        index.remove_node("d")
        assert number not in index.node_of_number
        assert number not in index.used_numbers


class TestRenumber:
    def test_renumber_preserves_answers(self, paper_dag):
        index = build(paper_dag)
        answers = {node: index.successors(node) for node in index.nodes()}
        index.renumber(gap=5)
        assert {node: index.successors(node) for node in index.nodes()} == answers
        index.check_invariants()

    def test_renumber_bad_gap(self, diamond):
        with pytest.raises(GraphError):
            build(diamond).renumber(gap=0)

    def test_renumber_after_updates(self, paper_dag):
        index = build(paper_dag)
        index.add_node("x", parents=["b"])
        index.add_arc("d", "g")
        index.renumber()
        index.check_invariants()
        index.verify()


class TestMixedStreams:
    @pytest.mark.parametrize("seed", range(4))
    def test_long_mixed_stream_stays_exact(self, seed):
        import random
        rng = random.Random(seed)
        index = build(random_hierarchy(40, rng=seed))
        for step in range(60):
            choice = rng.random()
            nodes = list(index.nodes())
            if choice < 0.45:
                index.add_node(("n", seed, step),
                               parents=rng.sample(nodes, k=min(2, len(nodes))))
            elif choice < 0.70 and index.graph.num_arcs:
                source, destination = rng.sample(nodes, k=2)
                if not index.reachable(destination, source) and \
                        not index.graph.has_arc(source, destination):
                    index.add_arc(source, destination)
            elif choice < 0.85 and index.graph.num_arcs:
                index.remove_arc(*rng.choice(list(index.graph.arcs())))
            elif len(nodes) > 5:
                index.remove_node(rng.choice(nodes))
        index.check_invariants()
        index.verify()

    def test_merged_index_survives_updates(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag, gap=16, merge=True)
        index.add_node("m1", parents=["c"])
        index.add_arc("d", "f")
        index.remove_arc("a", "b")
        index.check_invariants()
        index.verify()
