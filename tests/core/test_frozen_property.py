"""Property tests: the frozen engine always equals the mutable engine.

Same random-DAG strategy as ``test_index_property.py``; every example
builds the mutable index, freezes it (both backends where available),
and checks the full query surface, including an update → re-freeze
cycle and the staleness guard.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.frozen import default_backend
from repro.core.index import IntervalTCIndex
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph

try:
    import numpy  # noqa: F401 - availability probe only
    ALL_BACKENDS = ("array", "numpy")
except ImportError:
    ALL_BACKENDS = ("array",)


@st.composite
def small_dags(draw):
    """Arbitrary DAGs: arcs forced forward along a drawn permutation."""
    n = draw(st.integers(1, 14))
    permutation = draw(st.permutations(range(n)))
    rank = {node: position for position, node in enumerate(permutation)}
    pair_list = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=40))
    graph = DiGraph(nodes=range(n))
    for a, b in pair_list:
        if a == b:
            continue
        if rank[a] > rank[b]:
            a, b = b, a
        graph.add_arc(a, b)
    return graph


@given(small_dags(), st.sampled_from([1, 3, 32]),
       st.sampled_from(ALL_BACKENDS))
def test_frozen_equals_mutable(graph, gap, backend):
    index = IntervalTCIndex.build(graph, gap=gap)
    frozen = index.freeze(backend=backend)
    nodes = list(graph.nodes())
    for u in nodes:
        assert frozen.successors(u) == index.successors(u)
        assert frozen.predecessors(u) == index.predecessors(u)
        assert frozen.count_successors(u) == index.count_successors(u)
    pairs = [(u, v) for u in nodes for v in nodes]
    assert frozen.reachable_many(pairs) == \
        [index.reachable(u, v) for u, v in pairs]


@given(small_dags(), st.sampled_from(["integer", "fractional"]))
def test_frozen_equals_mutable_any_numbering(graph, numbering):
    index = IntervalTCIndex.build(graph, numbering=numbering, gap=4)
    frozen = index.freeze()
    for u in graph.nodes():
        assert frozen.successors(u) == index.successors(u)
        assert frozen.predecessors(u) == index.predecessors(u)


@settings(max_examples=40)
@given(small_dags(), st.integers(0, 10 ** 6))
def test_update_then_refreeze(graph, seed):
    """A mutation staleness-invalidates the old view; the re-frozen view
    matches the updated mutable index exactly."""
    index = IntervalTCIndex.build(graph, gap=8)
    frozen = index.freeze()
    nodes = sorted(graph.nodes())
    anchor = nodes[seed % len(nodes)]
    index.add_node("fresh", parents=[anchor])
    assert frozen.is_stale()
    with pytest.raises(IndexStateError):
        frozen.reachable(anchor, anchor)
    with pytest.raises(IndexStateError):
        frozen.successors(anchor)
    refrozen = index.freeze(backend=default_backend())
    assert refrozen.reachable(anchor, "fresh")
    for u in index.nodes():
        assert refrozen.successors(u) == index.successors(u)
        assert refrozen.predecessors(u) == index.predecessors(u)


@settings(max_examples=30)
@given(small_dags())
def test_semijoins_match_bruteforce(graph):
    index = IntervalTCIndex.build(graph, gap=1)
    frozen = index.freeze()
    nodes = sorted(graph.nodes())
    sources = nodes[::2]
    destinations = nodes[1::2]
    expected_forward = set()
    for source in sources:
        expected_forward |= index.successors(source)
    assert frozen.reachable_from_set(sources) == expected_forward
    expected_reaching = set()
    for destination in destinations:
        expected_reaching |= index.predecessors(destination)
    assert frozen.reaching_set(destinations) == expected_reaching
    expected_any = any(index.reachable(u, v)
                       for u in sources for v in destinations)
    assert frozen.any_reachable(sources, destinations) == expected_any
    for u in nodes[:6]:
        for v in nodes[:6]:
            expected = not (index.successors(u) & index.successors(v))
            assert frozen.are_disjoint(u, v) == expected
