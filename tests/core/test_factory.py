"""`repro.open_index` dispatch matrix and deprecated-loader shims."""

import warnings

import pytest

from repro import open_index
from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (load_any, load_frozen_index,
                                  load_hybrid_index, load_index,
                                  save_frozen_index, save_hybrid_index,
                                  save_index)
from repro.durability.store import DurableTCIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry


def diamond() -> DiGraph:
    graph = DiGraph()
    for source, destination in [("a", "b"), ("a", "c"), ("b", "d"),
                                ("c", "d")]:
        graph.add_arc(source, destination)
    return graph


class TestFromGraph:
    def test_auto_builds_interval(self):
        engine = open_index(diamond())
        assert isinstance(engine, IntervalTCIndex)
        assert engine.reachable("a", "d")

    def test_frozen(self):
        engine = open_index(diamond(), engine="frozen")
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "d")

    def test_hybrid(self):
        engine = open_index(diamond(), engine="hybrid")
        assert isinstance(engine, HybridTCIndex)
        engine.add_node("e", ["d"])
        assert engine.reachable("a", "e")

    def test_dict_alias(self):
        assert isinstance(open_index(diamond(), engine="dict"),
                          IntervalTCIndex)

    def test_unknown_engine(self):
        with pytest.raises(ReproError, match="unknown engine"):
            open_index(diamond(), engine="quantum")

    def test_build_kwargs_flow_through(self):
        engine = open_index(diamond(), policy="first_parent")
        assert engine.policy == "first_parent"


class TestFromDocuments:
    def test_mutable_doc_follows_auto(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        assert isinstance(open_index(path), IntervalTCIndex)

    def test_mutable_doc_coerces_to_frozen_and_hybrid(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        assert isinstance(open_index(path, engine="frozen"), FrozenTCIndex)
        assert isinstance(open_index(path, engine="hybrid"), HybridTCIndex)

    def test_frozen_doc_follows_auto(self, tmp_path):
        path = tmp_path / "frozen.json"
        save_frozen_index(IntervalTCIndex.build(diamond()).freeze(), path)
        engine = open_index(path)
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "d")

    def test_frozen_doc_refuses_mutable_engines(self, tmp_path):
        path = tmp_path / "frozen.json"
        save_frozen_index(IntervalTCIndex.build(diamond()).freeze(), path)
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(path, engine="interval")
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(path, engine="hybrid")

    def test_hybrid_doc_all_engines(self, tmp_path):
        path = tmp_path / "hybrid.json"
        hybrid = HybridTCIndex.build(diamond())
        hybrid.add_node("e", ["d"])
        save_hybrid_index(hybrid, path)
        assert isinstance(open_index(path), HybridTCIndex)
        assert isinstance(open_index(path, engine="interval"),
                          IntervalTCIndex)
        frozen = open_index(path, engine="frozen")
        assert isinstance(frozen, FrozenTCIndex)
        assert frozen.reachable("a", "e")

    def test_edge_list_path(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\nb c\n")
        engine = open_index(path, engine="frozen")
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "c")


class TestFromEngines:
    def test_passthrough(self):
        index = IntervalTCIndex.build(diamond())
        assert open_index(index) is index

    def test_coerce_existing_index_to_hybrid(self):
        hybrid = open_index(IntervalTCIndex.build(diamond()),
                            engine="hybrid")
        assert isinstance(hybrid, HybridTCIndex)

    def test_frozen_instance_refuses_interval(self):
        frozen = IntervalTCIndex.build(diamond()).freeze().detach()
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(frozen, engine="interval")

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(ReproError, match="cannot open"):
            open_index(42)


class TestDurable:
    def test_create_and_autodetect(self, tmp_path):
        target = tmp_path / "store"
        store = open_index(target, durable=True)
        assert isinstance(store, DurableTCIndex)
        store.add_node("a")
        store.add_node("b", ["a"])
        store.close()
        reopened = open_index(target)  # durable=None auto-detects
        try:
            assert isinstance(reopened, DurableTCIndex)
            assert reopened.reachable("a", "b")
        finally:
            reopened.close()

    def test_durable_false_forbids_store(self, tmp_path):
        target = tmp_path / "store"
        open_index(target, durable=True).close()
        with pytest.raises(Exception):
            open_index(target, durable=False)

    def test_frozen_engine_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="journalled"):
            open_index(tmp_path / "store", durable=True, engine="frozen")

    def test_durable_needs_a_path(self):
        with pytest.raises(ReproError, match="store directory path"):
            open_index(diamond(), durable=True)


class TestObservabilityWiring:
    def test_metrics_attach_through_factory(self):
        registry = MetricsRegistry()
        engine = open_index(diamond(), metrics=registry)
        engine.reachable("a", "d")
        counters = registry.snapshot()["counters"]
        assert counters[
            'tc_op_total{engine="IntervalTCIndex",op="reachable"}'] >= 1

    def test_factory_emits_no_deprecation_warnings(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            open_index(path)
            open_index(path, engine="frozen")


class TestDeprecatedShims:
    def test_load_index_warns(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        with pytest.deprecated_call():
            loaded = load_index(path)
        assert loaded.reachable("a", "d")

    def test_load_frozen_index_warns(self, tmp_path):
        path = tmp_path / "frozen.json"
        save_frozen_index(IntervalTCIndex.build(diamond()).freeze(), path)
        with pytest.deprecated_call():
            load_frozen_index(path)

    def test_load_hybrid_index_warns(self, tmp_path):
        path = tmp_path / "hybrid.json"
        save_hybrid_index(HybridTCIndex.build(diamond()), path)
        with pytest.deprecated_call():
            load_hybrid_index(path)

    def test_load_any_warns(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        with pytest.deprecated_call():
            load_any(path)
