"""`repro.open_index` dispatch matrix, coercion rules, auto-selection."""

import warnings

import pytest

from repro import open_index
from repro.core.chain_cover import ChainCoverIndex
from repro.core.frozen import FrozenTCIndex
from repro.core.hoplabel import HopLabelIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (save_chain_index, save_frozen_index,
                                  save_hoplabel_index, save_hybrid_index,
                                  save_index)
from repro.durability.store import DurableTCIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry


def diamond() -> DiGraph:
    graph = DiGraph()
    for source, destination in [("a", "b"), ("a", "c"), ("b", "d"),
                                ("c", "d")]:
        graph.add_arc(source, destination)
    return graph


class TestFromGraph:
    def test_auto_builds_interval(self):
        engine = open_index(diamond())
        assert isinstance(engine, IntervalTCIndex)
        assert engine.reachable("a", "d")

    def test_frozen(self):
        engine = open_index(diamond(), engine="frozen")
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "d")

    def test_hybrid(self):
        engine = open_index(diamond(), engine="hybrid")
        assert isinstance(engine, HybridTCIndex)
        engine.add_node("e", ["d"])
        assert engine.reachable("a", "e")

    def test_dict_alias(self):
        assert isinstance(open_index(diamond(), engine="dict"),
                          IntervalTCIndex)

    def test_unknown_engine(self):
        with pytest.raises(ReproError, match="unknown engine"):
            open_index(diamond(), engine="quantum")

    def test_build_kwargs_flow_through(self):
        engine = open_index(diamond(), policy="first_parent")
        assert engine.policy == "first_parent"

    def test_hoplabel(self):
        engine = open_index(diamond(), engine="hoplabel")
        assert isinstance(engine, HopLabelIndex)
        assert engine.reachable("a", "d")
        assert not engine.reachable("b", "c")

    def test_chain(self):
        engine = open_index(diamond(), engine="chain")
        assert isinstance(engine, ChainCoverIndex)
        assert engine.successors("a") == {"a", "b", "c", "d"}

    def test_chain_method_kwarg_flows_through(self):
        engine = open_index(diamond(), engine="chain", method="optimal")
        assert engine.stats()["method"] == "optimal"

    def test_hoplabel_rejects_build_kwargs(self):
        with pytest.raises(ReproError, match="no build options"):
            open_index(diamond(), engine="hoplabel", policy="first_parent")


class TestFromDocuments:
    def test_mutable_doc_follows_auto(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        assert isinstance(open_index(path), IntervalTCIndex)

    def test_mutable_doc_coerces_to_frozen_and_hybrid(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        assert isinstance(open_index(path, engine="frozen"), FrozenTCIndex)
        assert isinstance(open_index(path, engine="hybrid"), HybridTCIndex)

    def test_frozen_doc_follows_auto(self, tmp_path):
        path = tmp_path / "frozen.json"
        save_frozen_index(IntervalTCIndex.build(diamond()).freeze(), path)
        engine = open_index(path)
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "d")

    def test_frozen_doc_refuses_mutable_engines(self, tmp_path):
        path = tmp_path / "frozen.json"
        save_frozen_index(IntervalTCIndex.build(diamond()).freeze(), path)
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(path, engine="interval")
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(path, engine="hybrid")

    def test_hybrid_doc_all_engines(self, tmp_path):
        path = tmp_path / "hybrid.json"
        hybrid = HybridTCIndex.build(diamond())
        hybrid.add_node("e", ["d"])
        save_hybrid_index(hybrid, path)
        assert isinstance(open_index(path), HybridTCIndex)
        assert isinstance(open_index(path, engine="interval"),
                          IntervalTCIndex)
        frozen = open_index(path, engine="frozen")
        assert isinstance(frozen, FrozenTCIndex)
        assert frozen.reachable("a", "e")

    def test_edge_list_path(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\nb c\n")
        engine = open_index(path, engine="frozen")
        assert isinstance(engine, FrozenTCIndex)
        assert engine.reachable("a", "c")

    def test_hoplabel_doc_follows_auto(self, tmp_path):
        path = tmp_path / "hop.json"
        save_hoplabel_index(HopLabelIndex.build(diamond()), path)
        engine = open_index(path)
        assert isinstance(engine, HopLabelIndex)
        assert engine.reachable("a", "d")

    def test_chain_doc_follows_auto(self, tmp_path):
        path = tmp_path / "chain.json"
        save_chain_index(ChainCoverIndex.build(diamond()), path)
        engine = open_index(path)
        assert isinstance(engine, ChainCoverIndex)
        assert engine.predecessors("d") == {"a", "b", "c", "d"}

    def test_label_docs_refuse_other_engines(self, tmp_path):
        hop_path = tmp_path / "hop.json"
        save_hoplabel_index(HopLabelIndex.build(diamond()), hop_path)
        with pytest.raises(ReproError, match="2-hop labels"):
            open_index(hop_path, engine="interval")
        chain_path = tmp_path / "chain.json"
        save_chain_index(ChainCoverIndex.build(diamond()), chain_path)
        with pytest.raises(ReproError, match="chain-cover labels"):
            open_index(chain_path, engine="frozen")

    def test_mutable_doc_coerces_to_label_engines(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        assert isinstance(open_index(path, engine="hoplabel"),
                          HopLabelIndex)
        assert isinstance(open_index(path, engine="chain"),
                          ChainCoverIndex)


class TestFromEngines:
    def test_passthrough(self):
        index = IntervalTCIndex.build(diamond())
        assert open_index(index) is index

    def test_coerce_existing_index_to_hybrid(self):
        hybrid = open_index(IntervalTCIndex.build(diamond()),
                            engine="hybrid")
        assert isinstance(hybrid, HybridTCIndex)

    def test_frozen_instance_refuses_interval(self):
        frozen = IntervalTCIndex.build(diamond()).freeze().detach()
        with pytest.raises(ReproError, match="frozen buffers"):
            open_index(frozen, engine="interval")

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(ReproError, match="cannot open"):
            open_index(42)


class TestDurable:
    def test_create_and_autodetect(self, tmp_path):
        target = tmp_path / "store"
        store = open_index(target, durable=True)
        assert isinstance(store, DurableTCIndex)
        store.add_node("a")
        store.add_node("b", ["a"])
        store.close()
        reopened = open_index(target)  # durable=None auto-detects
        try:
            assert isinstance(reopened, DurableTCIndex)
            assert reopened.reachable("a", "b")
        finally:
            reopened.close()

    def test_durable_false_forbids_store(self, tmp_path):
        target = tmp_path / "store"
        open_index(target, durable=True).close()
        with pytest.raises(Exception):
            open_index(target, durable=False)

    def test_frozen_engine_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="journalled"):
            open_index(tmp_path / "store", durable=True, engine="frozen")

    def test_durable_needs_a_path(self):
        with pytest.raises(ReproError, match="store directory path"):
            open_index(diamond(), durable=True)


class TestObservabilityWiring:
    def test_metrics_attach_through_factory(self):
        registry = MetricsRegistry()
        engine = open_index(diamond(), metrics=registry)
        engine.reachable("a", "d")
        counters = registry.snapshot()["counters"]
        assert counters[
            'tc_op_total{engine="IntervalTCIndex",op="reachable"}'] >= 1

    def test_factory_emits_no_deprecation_warnings(self, tmp_path):
        path = tmp_path / "idx.json"
        save_index(IntervalTCIndex.build(diamond()), path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            open_index(path)
            open_index(path, engine="frozen")


class TestShimRemoval:
    """The PR 5 deprecated loaders are gone; ``open_index`` is the door."""

    def test_loaders_no_longer_importable(self):
        import repro.core.serialize as serialize
        for name in ("load_index", "load_frozen_index",
                     "load_hybrid_index", "load_any"):
            assert not hasattr(serialize, name)

    def test_core_namespace_dropped_loaders(self):
        import repro.core as core
        for name in ("load_index", "load_frozen_index", "load_hybrid_index"):
            assert not hasattr(core, name)
            assert name not in core.__all__


class TestCapabilities:
    def test_kinds_cover_the_engine_matrix(self):
        kinds = {
            IntervalTCIndex.build(diamond()).capabilities().kind: None,
            open_index(diamond(), engine="frozen").capabilities().kind: None,
            open_index(diamond(), engine="hybrid").capabilities().kind: None,
            open_index(diamond(), engine="hoplabel").capabilities().kind: None,
            open_index(diamond(), engine="chain").capabilities().kind: None,
        }
        assert set(kinds) == {"interval", "frozen", "hybrid", "hoplabel",
                              "chain"}

    def test_snapshot_engines_declare_it(self):
        for engine_name in ("frozen", "hoplabel", "chain"):
            caps = open_index(diamond(), engine=engine_name).capabilities()
            assert caps.is_frozen_snapshot
            assert not caps.supports_updates

    def test_durable_wraps_inner_capabilities(self, tmp_path):
        store = open_index(tmp_path / "store", durable=True)
        try:
            caps = store.capabilities()
            assert caps.durable and caps.supports_updates
            assert caps.kind == "durable"
        finally:
            store.close()


class TestAutoSelection:
    def test_small_graphs_stay_interval(self):
        # Build cost dominates below the small_nodes threshold: auto
        # keeps the flexible updatable index.
        assert isinstance(open_index(diamond()), IntervalTCIndex)

    def test_deep_chain_graph_selects_chain(self):
        arcs = [(f"n{i}", f"n{i+1}") for i in range(400)]
        engine = open_index(DiGraph(arcs))
        assert isinstance(engine, ChainCoverIndex)
        assert engine.reachable("n0", "n400")

    def test_bipartite_graph_avoids_interval(self):
        # Figure 3.6's worst case: every engine stores Θ(n²/4), so auto
        # must pick a compiled flat representation, not the updatable
        # interval index.
        arcs = [(f"s{i}", f"t{j}") for i in range(20) for j in range(20)]
        engine = open_index(DiGraph(arcs))
        assert not isinstance(engine, IntervalTCIndex) or \
            len(engine) < 256  # small carve-out may still apply
        big = [(f"s{i}", f"t{j}") for i in range(160) for j in range(160)]
        engine = open_index(DiGraph(big))
        assert engine.capabilities().is_frozen_snapshot

    def test_build_kwargs_pin_interval(self):
        arcs = [(f"n{i}", f"n{i+1}") for i in range(400)]
        engine = open_index(DiGraph(arcs), policy="first_parent")
        assert isinstance(engine, IntervalTCIndex)
