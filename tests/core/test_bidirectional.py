"""Tests for the forward+backward index pair."""

import random

import pytest

from repro.core.bidirectional import BidirectionalTCIndex
from repro.errors import CycleError, IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import ancestors_of, reachable_from


class TestQueries:
    def test_both_directions(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        for node in paper_dag:
            assert index.successors(node) == reachable_from(paper_dag, node)
            assert index.predecessors(node) == ancestors_of(paper_dag, node)

    def test_predecessors_match_forward_scan(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        for node in paper_dag:
            assert index.predecessors(node) == index.forward.predecessors(node)

    def test_count_predecessors(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        for node in paper_dag:
            assert index.count_predecessors(node) == len(index.predecessors(node))

    def test_container_protocol(self, diamond):
        index = BidirectionalTCIndex.build(diamond)
        assert "a" in index and "ghost" not in index
        assert len(index) == 4
        assert set(index.nodes()) == set(diamond.nodes())

    def test_storage_is_sum_of_sides(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        assert index.storage_units == \
            index.forward.storage_units + index.backward.storage_units


class TestUpdates:
    def test_add_node(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        index.add_node("new", parents=["b", "c"])
        assert index.reachable("a", "new")
        assert index.predecessors("new") == \
            ancestors_of(index.forward.graph, "new")
        index.check_invariants()
        index.verify()

    def test_add_and_remove_arc(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        index.add_arc("d", "f")
        assert "d" in index.predecessors("f")
        index.remove_arc("d", "f")
        assert "d" not in index.predecessors("f")
        index.check_invariants()
        index.verify()

    def test_remove_node(self, paper_dag):
        index = BidirectionalTCIndex.build(paper_dag)
        index.remove_node("c")
        assert "c" not in index
        index.check_invariants()
        index.verify()

    def test_cycle_rejected_consistently(self, chain5):
        index = BidirectionalTCIndex.build(chain5)
        with pytest.raises(CycleError):
            index.add_arc(4, 0)
        index.check_invariants()   # the failed add must not desync the pair

    def test_divergence_detected(self, diamond):
        index = BidirectionalTCIndex.build(diamond)
        index.forward.graph.add_arc("b", "c")   # bypass the pair API
        with pytest.raises(IndexStateError):
            index.check_invariants()

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_stream(self, seed):
        rng = random.Random(seed)
        index = BidirectionalTCIndex.build(random_dag(30, 2, seed), gap=16)
        for step in range(30):
            nodes = list(index.nodes())
            roll = rng.random()
            if roll < 0.4:
                index.add_node(("x", step), parents=rng.sample(nodes, 2))
            elif roll < 0.6:
                source, destination = rng.sample(nodes, 2)
                if not index.reachable(destination, source) and \
                        not index.forward.graph.has_arc(source, destination):
                    index.add_arc(source, destination)
            elif roll < 0.8 and index.forward.graph.num_arcs > 5:
                index.remove_arc(*rng.choice(list(index.forward.graph.arcs())))
            elif len(nodes) > 3:
                index.remove_node(rng.choice(nodes))
        index.check_invariants()
        index.verify()
