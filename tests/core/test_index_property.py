"""Property tests: the index always equals pointer-chasing ground truth."""

from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


@st.composite
def small_dags(draw):
    """Arbitrary DAGs: arcs forced forward along a drawn permutation."""
    n = draw(st.integers(1, 14))
    permutation = draw(st.permutations(range(n)))
    rank = {node: position for position, node in enumerate(permutation)}
    pair_list = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=40))
    graph = DiGraph(nodes=range(n))
    for a, b in pair_list:
        if a == b:
            continue
        if rank[a] > rank[b]:
            a, b = b, a
        graph.add_arc(a, b)
    return graph


@given(small_dags(), st.sampled_from([1, 3, 32]),
       st.booleans())
def test_index_matches_ground_truth(graph, gap, merge):
    index = IntervalTCIndex.build(graph, gap=gap, merge=merge)
    index.check_invariants()
    for source in graph:
        assert index.successors(source) == reachable_from(graph, source)


@given(small_dags(), st.sampled_from(["alg1", "first_parent", "last_parent",
                                      "random", "min_pred"]))
def test_every_policy_matches_ground_truth(graph, policy):
    index = IntervalTCIndex.build(graph, policy=policy, gap=1, rng=7)
    for source in graph:
        assert index.successors(source) == reachable_from(graph, source)


@given(small_dags())
def test_predecessors_are_inverse_of_successors(graph):
    index = IntervalTCIndex.build(graph, gap=1)
    for destination in graph:
        predecessors = index.predecessors(destination)
        for source in graph:
            assert (source in predecessors) == index.reachable(source, destination)


@given(small_dags())
def test_storage_counts_are_consistent(graph):
    index = IntervalTCIndex.build(graph, gap=1)
    assert index.num_intervals == sum(
        len(interval_set) for interval_set in index.intervals.values())
    assert index.storage_units == 2 * index.num_intervals
    # Every node pays at least its tree interval.
    assert index.num_intervals >= graph.num_nodes


@given(small_dags())
def test_transitivity_of_answers(graph):
    """If u reaches v and v reaches w then u reaches w (index-internal)."""
    index = IntervalTCIndex.build(graph, gap=1)
    nodes = list(graph.nodes())[:8]
    for u in nodes:
        for v in nodes:
            if not index.reachable(u, v):
                continue
            for w in nodes:
                if index.reachable(v, w):
                    assert index.reachable(u, w)


@settings(max_examples=25)
@given(st.integers(0, 1000), st.integers(10, 60),
       st.floats(0.5, 3.0))
def test_larger_random_dags(seed, n, degree):
    graph = random_dag(n, min(degree, (n - 1) / 2), seed)
    index = IntervalTCIndex.build(graph)
    index.check_invariants()
    nodes = list(graph.nodes())
    for source in nodes[:12]:
        assert index.successors(source) == reachable_from(graph, source)
