"""Stateful property test of the full index lifecycle.

A Hypothesis rule machine drives an :class:`IntervalTCIndex` through the
same mixed update stream the fuzzer exercises — node/arc insertions and
deletions, freezes, and refreezes — holding a set-based closure oracle
alongside.  After every step the machine checks full reachability
agreement and the paper-level structural audits; freeze rules verify the
staleness contract (mutate after freeze => the view is stale and raises;
refreeze => fresh agreement again).
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.frozen import FrozenTCIndex
from repro.core.index import IntervalTCIndex
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph
from repro.testing.invariants import audit_index
from repro.testing.oracle import SetClosureOracle

import pytest

MAX_NODES = 14


class LifecycleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = IntervalTCIndex.build(
            DiGraph(arcs=[(0, 1)], nodes=[0, 1]), gap=4)
        self.oracle = SetClosureOracle(arcs=[(0, 1)], nodes=[0, 1])
        self.next_label = 2
        self.frozen = None
        self.frozen_fresh = False

    # -- helpers -------------------------------------------------------
    def _nodes(self):
        return sorted(self.oracle.nodes())

    def _pick(self, choice):
        nodes = self._nodes()
        return nodes[choice % len(nodes)]

    def _mutated(self):
        """Every mutation must stale any previously fresh frozen view."""
        if self.frozen is not None and self.frozen_fresh:
            assert self.frozen.is_stale()
            with pytest.raises(IndexStateError):
                self.frozen.reachable(0, 0)
            self.frozen_fresh = False

    # -- mutation rules ------------------------------------------------
    @precondition(lambda self: len(self.oracle) < MAX_NODES)
    @rule(choice=st.integers(0, 10 ** 6), extra=st.integers(0, 10 ** 6),
          two_parents=st.booleans())
    def add_node(self, choice, extra, two_parents):
        parents = [self._pick(choice)]
        if two_parents:
            second = self._pick(extra)
            if second not in parents:
                parents.append(second)
        label = self.next_label
        self.next_label += 1
        self.index.add_node(label, parents=parents)
        self.oracle.add_node(label)
        for parent in parents:
            self.oracle.add_arc(parent, label)
        self._mutated()

    @rule(choice=st.integers(0, 10 ** 6))
    def add_root(self, choice):
        label = self.next_label
        self.next_label += 1
        self.index.add_node(label, parents=[])
        self.oracle.add_node(label)
        self._mutated()

    @rule(a=st.integers(0, 10 ** 6), b=st.integers(0, 10 ** 6))
    def add_arc(self, a, b):
        source, destination = self._pick(a), self._pick(b)
        if source == destination \
                or self.oracle.has_arc(source, destination) \
                or self.oracle.reachable(destination, source):
            return
        self.index.add_arc(source, destination)
        self.oracle.add_arc(source, destination)
        self._mutated()

    @precondition(lambda self: self.oracle.arcs())
    @rule(choice=st.integers(0, 10 ** 6))
    def remove_arc(self, choice):
        arcs = sorted(self.oracle.arcs())
        source, destination = arcs[choice % len(arcs)]
        self.index.remove_arc(source, destination)
        self.oracle.remove_arc(source, destination)
        self._mutated()

    @precondition(lambda self: len(self.oracle) > 1)
    @rule(choice=st.integers(0, 10 ** 6))
    def remove_node(self, choice):
        node = self._pick(choice)
        self.index.remove_node(node)
        self.oracle.remove_node(node)
        self._mutated()

    # -- freeze rules --------------------------------------------------
    @rule()
    def freeze(self):
        self.frozen = self.index.freeze()
        self.frozen_fresh = True
        assert isinstance(self.frozen, FrozenTCIndex)
        for source in self._nodes():
            assert set(self.frozen.successors(source)) \
                == self.oracle.successors(source)

    @precondition(lambda self: self.frozen is not None
                  and not self.frozen_fresh)
    @rule()
    def refreeze_after_mutation(self):
        """The freeze-then-mutate-then-refreeze cycle restores agreement."""
        assert self.frozen.is_stale()
        self.freeze()

    # -- global checks -------------------------------------------------
    @invariant()
    def agrees_with_oracle_and_passes_audits(self):
        audit_index(self.index)
        for source in self._nodes():
            assert self.index.successors(source) \
                == self.oracle.successors(source)


LifecycleMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestLifecycle = LifecycleMachine.TestCase
