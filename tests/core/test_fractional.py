"""Tests for fractional (rational) postorder numbering — the §4 footnote.

"While assigning postorder numbers to nodes ... one could use real
numbers instead of integers."  Under fractional numbering a slot always
exists between any two rationals, so insertion never renumbers: existing
labels are frozen for the life of the index.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.core.serialize import index_from_dict, index_to_dict
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


def build_fractional(graph, **kwargs):
    kwargs.setdefault("gap", 2)
    kwargs.setdefault("numbering", "fractional")
    return IntervalTCIndex.build(graph, **kwargs)


class TestConstruction:
    def test_initial_numbers_are_integers(self, paper_dag):
        index = build_fractional(paper_dag)
        assert all(isinstance(number, int) or number.denominator == 1
                   for number in index.postorder.values())
        index.verify()

    def test_gap_one_rejected(self, paper_dag):
        with pytest.raises(IndexStateError):
            IntervalTCIndex.build(paper_dag, gap=1, numbering="fractional")

    def test_unknown_numbering_rejected(self, paper_dag):
        with pytest.raises(IndexStateError):
            IntervalTCIndex.build(paper_dag, numbering="imaginary")


class TestFrozenLabels:
    def test_deep_chain_never_renumbers(self, diamond):
        index = build_fractional(diamond)
        frozen = dict(index.postorder)
        parent = "d"
        for step in range(50):
            index.add_node(("deep", step), parents=[parent])
            parent = ("deep", step)
        for node, number in frozen.items():
            assert index.postorder[node] == number
        index.check_invariants()
        index.verify()

    def test_wide_fan_never_renumbers(self, diamond):
        index = build_fractional(diamond)
        frozen = dict(index.postorder)
        for step in range(50):
            index.add_node(("wide", step), parents=["d"])
        for node, number in frozen.items():
            assert index.postorder[node] == number
        index.verify()

    def test_numbers_become_fractions(self, diamond):
        index = build_fractional(diamond)
        index.add_node("x", parents=["d"])
        index.add_node("y", parents=["x"])
        assert isinstance(index.postorder["y"], Fraction)
        assert index.reachable("a", "y")

    def test_numbers_stay_strictly_ordered(self, diamond):
        index = build_fractional(diamond)
        for step in range(30):
            index.add_node(("s", step), parents=["d"])
        numbers = sorted(index.postorder.values())
        assert all(first < second for first, second in zip(numbers, numbers[1:]))


class TestDeletionsStillWork:
    def test_mixed_stream(self):
        import random
        rng = random.Random(7)
        index = build_fractional(random_dag(25, 2, 7))
        for step in range(50):
            nodes = list(index.nodes())
            roll = rng.random()
            if roll < 0.5:
                index.add_node(("m", step),
                               parents=rng.sample(nodes, k=min(2, len(nodes))))
            elif roll < 0.7 and index.graph.num_arcs > 5:
                index.remove_arc(*rng.choice(list(index.graph.arcs())))
            elif roll < 0.9:
                source, destination = rng.sample(nodes, 2)
                if not index.reachable(destination, source) and \
                        not index.graph.has_arc(source, destination):
                    index.add_arc(source, destination)
            elif len(nodes) > 4:
                index.remove_node(rng.choice(nodes))
        index.check_invariants()
        index.verify()


class TestStatsAndIntrospection:
    def test_stats_report_numbering(self, diamond):
        index = build_fractional(diamond)
        assert index.stats().numbering == "fractional"

    def test_explain_works_with_fractions(self, diamond):
        from repro.core.explain import describe, explain_reachability
        index = build_fractional(diamond)
        index.add_node("x", parents=["d"])
        index.add_node("y", parents=["x"])
        assert "reaches" in explain_reachability(index, "a", "y")
        assert "IntervalTCIndex over" in describe(index)

    def test_iter_successors_with_fractions(self, diamond):
        index = build_fractional(diamond)
        for step in range(6):
            index.add_node(("f", step), parents=["d"])
        assert set(index.iter_successors("a")) == index.successors("a")


class TestSerialization:
    def test_fractions_round_trip(self, diamond):
        index = build_fractional(diamond)
        index.add_node("x", parents=["d"])
        index.add_node("y", parents=["x"])
        again = index_from_dict(index_to_dict(index))
        assert again.numbering == "fractional"
        assert again.postorder["y"] == index.postorder["y"]
        for node in index.nodes():
            assert again.successors(node) == index.successors(node)
        again.add_node("z", parents=["y"])   # still updatable after loading
        again.verify()


@settings(max_examples=25)
@given(st.integers(2, 12), st.integers(0, 5000),
       st.lists(st.integers(0, 10 ** 6), max_size=12))
def test_fractional_matches_ground_truth(n, seed, insert_picks):
    graph = random_dag(n, min(1.5, (n - 1) / 2), seed)
    index = build_fractional(graph)
    for counter, pick in enumerate(insert_picks):
        nodes = sorted(index.nodes(), key=str)
        index.add_node(("p", counter), parents=[nodes[pick % len(nodes)]])
    index.check_invariants()
    for source in index.nodes():
        assert index.successors(source) == reachable_from(index.graph, source)
