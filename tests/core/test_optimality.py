"""Theorem 1 re-verified: Alg1's tree cover minimises the interval count.

The proof in the paper is constructive; here we brute-force every possible
tree cover of small graphs (every way of choosing a tree parent per node)
and check Alg1 is never beaten.  The paper's optimality is stated for the
interval count *without* adjacent-interval merging, which is what we
compare.
"""

import pytest

from repro.core.labeling import label_graph
from repro.core.tree_cover import all_tree_covers, build_tree_cover
from repro.graph.digraph import DiGraph
from repro.graph.generators import enumerate_dags, random_dag


def intervals_under_cover(graph, cover):
    return label_graph(graph, cover, gap=1).total_intervals


def brute_force_minimum(graph):
    return min(intervals_under_cover(graph, cover)
               for cover in all_tree_covers(graph))


def alg1_count(graph):
    return intervals_under_cover(graph, build_tree_cover(graph, "alg1"))


class TestExhaustiveSmallGraphs:
    def test_all_4_node_dags(self):
        """All 64 fixed-order DAGs on 4 nodes."""
        for graph in enumerate_dags(4):
            assert alg1_count(graph) == brute_force_minimum(graph), \
                sorted(graph.arcs())

    def test_all_5_node_dags_subsample(self):
        """Every 7th of the 1024 fixed-order DAGs on 5 nodes."""
        for position, graph in enumerate(enumerate_dags(5)):
            if position % 7:
                continue
            assert alg1_count(graph) == brute_force_minimum(graph), \
                sorted(graph.arcs())


class TestRandomGraphs:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_6_node_dags(self, seed):
        graph = random_dag(6, 1.5, seed)
        assert alg1_count(graph) == brute_force_minimum(graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_7_node_denser_dags(self, seed):
        graph = random_dag(7, 2.0, seed + 100)
        assert alg1_count(graph) == brute_force_minimum(graph)


class TestPaperExamples:
    def test_known_suboptimal_choice_exists(self):
        """A graph where the naive first-parent cover is strictly worse."""
        # d's predecessors: b (pred {a}) and c (pred {a, b}).  Keeping (b, d)
        # forces c's interval for d to survive at more ancestors.
        graph = DiGraph([("a", "b"), ("a", "c"), ("b", "c"),
                         ("b", "d"), ("c", "d"), ("a", "e"), ("e", "d")])
        optimal = alg1_count(graph)
        assert optimal == brute_force_minimum(graph)
        worst = max(intervals_under_cover(graph, cover)
                    for cover in all_tree_covers(graph))
        assert worst > optimal

    def test_tree_needs_no_search(self):
        """For a tree there is a single cover, and it costs n intervals."""
        graph = DiGraph([("r", "x"), ("r", "y"), ("x", "z")])
        covers = list(all_tree_covers(graph))
        assert len(covers) == 1
        assert alg1_count(graph) == 4
