"""Tests for the delta-overlay hybrid engine.

The contract under test: every query answers exactly as the write-through
mutable index would, whatever mix of base snapshot, delta overlay, taint
routing and compaction is serving it — and compaction itself is invisible
at the query level.
"""

import pytest

from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (
    hybrid_from_dict,
    hybrid_to_dict,
    save_hybrid_index,
)
from repro.factory import open_index
from repro.errors import NodeNotFoundError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag


def assert_matches_index(hybrid):
    """Every query form agrees with the write-through index."""
    index = hybrid.index
    nodes = sorted(index.nodes(), key=repr)
    for node in nodes:
        assert hybrid.successors(node) == index.successors(node)
        assert hybrid.predecessors(node) == index.predecessors(node)
        assert hybrid.count_successors(node) == index.count_successors(node)
    pairs = [(u, v) for u in nodes for v in nodes]
    expected = [index.reachable(u, v) for u, v in pairs]
    assert hybrid.reachable_many(pairs) == expected
    for (u, v), answer in zip(pairs, expected):
        assert hybrid.reachable(u, v) == answer


class TestConstruction:
    def test_build_snapshots_and_answers(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag)
        assert hybrid.reachable("a", "h")
        assert not hybrid.tainted
        assert hybrid.delta_size == 0
        assert_matches_index(hybrid)

    def test_from_index_and_from_arcs(self, diamond):
        index = IntervalTCIndex.build(diamond)
        wrapped = HybridTCIndex.from_index(index)
        assert wrapped.index is index
        direct = HybridTCIndex.from_arcs(diamond.arcs())
        assert_matches_index(wrapped)
        assert_matches_index(direct)

    def test_invalid_settings_rejected(self, diamond):
        index = IntervalTCIndex.build(diamond)
        with pytest.raises(ReproError):
            HybridTCIndex(index, max_delta=0)
        with pytest.raises(ReproError):
            HybridTCIndex(index, max_ratio=0)
        with pytest.raises(ReproError):
            HybridTCIndex(index, delete_cost=0)

    def test_unknown_node_raises(self, diamond):
        hybrid = HybridTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            hybrid.reachable("a", "nope")
        with pytest.raises(NodeNotFoundError):
            hybrid.successors("nope")


class TestDeltaAdditions:
    def test_added_arc_is_corrected_not_compacted(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        base_before = hybrid.base
        assert not hybrid.reachable("g", "d")
        hybrid.add_arc("g", "d")
        assert hybrid.base is base_before  # still serving the old snapshot
        assert hybrid.delta_size == 1
        assert hybrid.reachable("g", "d")
        assert_matches_index(hybrid)

    def test_added_node_reaches_and_is_reached(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("new", parents=["e"])
        assert "new" in hybrid
        assert hybrid.reachable("a", "new")
        assert hybrid.reachable("new", "new")
        assert not hybrid.reachable("new", "a")
        assert_matches_index(hybrid)

    def test_chained_delta_arcs(self, chain5):
        hybrid = HybridTCIndex.build(chain5, max_delta=100, max_ratio=100.0)
        hybrid.add_node("x", parents=[4])
        hybrid.add_node("y", parents=["x"])
        hybrid.add_node("z", parents=["y"])
        assert hybrid.reachable(0, "z")
        assert hybrid.predecessors("z") == {0, 1, 2, 3, 4, "x", "y", "z"}
        assert_matches_index(hybrid)

    def test_duplicate_arc_is_a_noop(self, diamond):
        hybrid = HybridTCIndex.build(diamond, max_delta=100, max_ratio=100.0)
        hybrid.add_arc("b", "d")  # already present in the seed graph
        assert hybrid.delta_size == 0
        assert hybrid.delta_cost == 0


class TestDeletionsAndTaint:
    def test_delta_arc_delete_keeps_fast_path(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_arc("g", "d")
        hybrid.remove_arc("g", "d")
        assert not hybrid.tainted
        assert hybrid.delta_size == 0
        assert not hybrid.reachable("g", "d")
        assert_matches_index(hybrid)

    def test_pre_snapshot_arc_delete_taints(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1000,
                                     max_ratio=1000.0)
        hybrid.remove_arc("a", "b")
        assert hybrid.tainted
        assert not hybrid.reachable("a", "b") or \
            hybrid.index.reachable("a", "b")
        assert_matches_index(hybrid)

    def test_delta_node_delete_keeps_fast_path(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("tmp", parents=["b", "c"])
        hybrid.remove_node("tmp")
        assert not hybrid.tainted
        assert hybrid.delta_size == 0
        assert "tmp" not in hybrid
        assert_matches_index(hybrid)

    def test_pre_snapshot_node_delete_taints(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1000,
                                     max_ratio=1000.0)
        hybrid.remove_node("d")
        assert hybrid.tainted
        assert "d" not in hybrid
        assert_matches_index(hybrid)

    def test_compaction_clears_taint(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1000,
                                     max_ratio=1000.0)
        hybrid.remove_arc("a", "b")
        assert hybrid.tainted
        assert hybrid.compact()
        assert not hybrid.tainted
        assert_matches_index(hybrid)


class TestCompaction:
    def test_threshold_triggers_compaction(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=3, max_ratio=100.0)
        hybrid.add_node("n1", parents=["a"])  # cost 2 -> under threshold
        assert hybrid.compactions == 0
        hybrid.add_node("n2", parents=["a"])  # cost 4 -> crosses 3
        assert hybrid.compactions == 1
        assert hybrid.delta_size == 0
        assert_matches_index(hybrid)

    def test_ratio_threshold_binds_on_small_bases(self, diamond):
        # 4-node base, ratio 0.25 -> threshold 1: every mutation folds.
        hybrid = HybridTCIndex.build(diamond, max_delta=1000, max_ratio=0.25)
        hybrid.add_node("e", parents=["d"])
        assert hybrid.compactions == 1
        assert hybrid.delta_size == 0

    def test_explicit_compact_reports_whether_it_folded(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        assert not hybrid.compact()  # empty overlay: nothing to do
        hybrid.add_arc("g", "d")
        assert hybrid.compact()
        assert hybrid.compactions == 1
        assert not hybrid.compact()

    def test_compact_is_query_invisible(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("new", parents=["h"])
        hybrid.add_arc("g", "d")
        nodes = sorted(hybrid.index.nodes(), key=repr)
        before = {node: (hybrid.successors(node), hybrid.predecessors(node))
                  for node in nodes}
        assert hybrid.compact()
        for node in nodes:
            assert hybrid.successors(node) == before[node][0]
            assert hybrid.predecessors(node) == before[node][1]

    def test_auto_compact_on_query_defers_folding(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1, max_ratio=100.0,
                                     auto_compact_on_query=True)
        hybrid.add_arc("g", "d")
        hybrid.add_node("new", parents=["d"])
        assert hybrid.compactions == 0  # mutations never fold
        assert hybrid.reachable("g", "new")  # first query does
        assert hybrid.compactions == 1
        assert hybrid.delta_size == 0

    def test_out_of_band_index_mutation_taints(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1000,
                                     max_ratio=1000.0)
        hybrid.index.add_arc("g", "d")  # bypasses the overlay entirely
        assert hybrid.reachable("g", "d")  # safety valve: exact anyway
        assert hybrid.tainted
        assert_matches_index(hybrid)


class TestBatchAndSemijoins:
    def _populated(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("new", parents=["e"])
        hybrid.add_arc("g", "d")
        return hybrid

    def test_semijoins_match_index(self, paper_dag):
        hybrid = self._populated(paper_dag)
        index = hybrid.index
        nodes = sorted(index.nodes(), key=repr)
        sources, destinations = nodes[::2], nodes[1::2]
        expected_from = set()
        for source in sources:
            expected_from |= index.successors(source)
        assert hybrid.reachable_from_set(sources) == expected_from
        expected_to = set()
        for destination in destinations:
            expected_to |= index.predecessors(destination)
        assert hybrid.reaching_set(destinations) == expected_to
        expected_any = any(index.reachable(u, v)
                           for u in sources for v in destinations)
        assert hybrid.any_reachable(sources, destinations) == expected_any
        for u in nodes:
            for v in nodes:
                expected = not (index.successors(u) & index.successors(v))
                assert hybrid.are_disjoint(u, v) == expected

    def test_many_forms_match_pointwise(self, paper_dag):
        hybrid = self._populated(paper_dag)
        nodes = sorted(hybrid.index.nodes(), key=repr)
        assert hybrid.successors_many(nodes) == \
            [hybrid.successors(node) for node in nodes]
        assert hybrid.predecessors_many(nodes) == \
            [hybrid.predecessors(node) for node in nodes]
        assert set(hybrid.iter_successors("a")) == hybrid.successors("a")

    def test_reachable_many_empty_batch(self, diamond):
        hybrid = HybridTCIndex.build(diamond)
        assert hybrid.reachable_many([]) == []


class TestIntrospection:
    def test_stats_and_repr(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_arc("g", "d")
        stats = hybrid.stats()
        assert stats["delta_arcs"] == 1
        assert stats["compactions"] == 0
        assert stats["base"]["num_nodes"] == len(hybrid)
        assert "delta_arcs=1" in repr(hybrid)

    def test_verify_accepts_live_overlay(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("new", parents=["b"])
        hybrid.add_arc("g", "d")
        hybrid.verify()

    def test_len_contains_nodes(self, diamond):
        hybrid = HybridTCIndex.build(diamond)
        assert len(hybrid) == 4
        assert "a" in hybrid
        assert set(hybrid.nodes()) == set(diamond.nodes())


class TestPersistence:
    def test_dict_round_trip_preserves_overlay(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_node("new", parents=["e"])
        hybrid.add_arc("g", "d")
        restored = hybrid_from_dict(hybrid_to_dict(hybrid))
        assert restored.delta_arcs == hybrid.delta_arcs
        assert restored.delta_nodes == hybrid.delta_nodes
        assert restored.tainted == hybrid.tainted
        assert_matches_index(restored)
        assert restored.reachable("a", "new")

    def test_file_round_trip_and_load_any(self, tmp_path, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=100,
                                     max_ratio=100.0)
        hybrid.add_arc("g", "d")
        path = tmp_path / "hybrid.json"
        save_hybrid_index(hybrid, path)
        loaded = open_index(path, engine="hybrid")
        assert loaded.reachable("g", "d")
        assert isinstance(open_index(path), HybridTCIndex)

    def test_restored_base_is_pinned(self, tmp_path, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag)
        path = tmp_path / "hybrid.json"
        save_hybrid_index(hybrid, path)
        loaded = open_index(path, engine="hybrid")
        loaded.add_arc("g", "d")  # must not raise staleness
        assert loaded.reachable("g", "d")
        assert_matches_index(loaded)

    def test_tainted_state_survives_round_trip(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1000,
                                     max_ratio=1000.0)
        hybrid.remove_arc("a", "b")
        restored = hybrid_from_dict(hybrid_to_dict(hybrid))
        assert restored.tainted
        assert_matches_index(restored)

    def test_wrong_kind_rejected(self, paper_dag):
        from repro.core.serialize import index_from_dict, index_to_dict
        index = IntervalTCIndex.build(paper_dag)
        with pytest.raises(ReproError):
            hybrid_from_dict(index_to_dict(index))
        document = hybrid_to_dict(HybridTCIndex.from_index(index))
        with pytest.raises(ReproError):
            index_from_dict(document)


class TestRandomisedChurn:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_workload_stays_exact(self, seed):
        import random

        rng = random.Random(seed)
        graph = random_dag(30, 1.8, seed)
        hybrid = HybridTCIndex.build(graph, max_delta=8)
        label = 1000
        for _ in range(120):
            nodes = sorted(hybrid.index.nodes(), key=repr)
            roll = rng.random()
            if roll < 0.35 and len(nodes) > 1:
                source, destination = rng.sample(nodes, 2)
                if not hybrid.index.graph.has_arc(source, destination) \
                        and not hybrid.reachable(destination, source):
                    hybrid.add_arc(source, destination)
            elif roll < 0.55:
                parents = rng.sample(nodes, min(len(nodes), rng.randint(0, 2)))
                hybrid.add_node(label, parents=parents)
                label += 1
            elif roll < 0.65:
                arcs = sorted(hybrid.index.graph.arcs(), key=repr)
                if arcs:
                    hybrid.remove_arc(*rng.choice(arcs))
            elif roll < 0.72 and len(nodes) > 2:
                hybrid.remove_node(rng.choice(nodes))
            elif roll < 0.8:
                hybrid.compact()
            else:
                source = rng.choice(nodes)
                destination = rng.choice(nodes)
                assert hybrid.reachable(source, destination) == \
                    hybrid.index.reachable(source, destination)
        assert_matches_index(hybrid)
        assert hybrid.compactions > 0


class TestSnapshotEpoch:
    """The serving hooks: pinned immutable snapshots and publish epochs."""

    def test_snapshot_is_detached_and_immutable(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1_000_000, max_ratio=1_000_000.0)
        first = hybrid.snapshot()
        assert first is hybrid.base
        before = first.successors("a")
        hybrid.add_node("z", parents=["a"])
        # The pinned snapshot never sees later writes...
        assert "z" not in first
        assert first.successors("a") == before
        # ...while a fresh one does, as a different object.
        second = hybrid.snapshot()
        assert second is not first
        assert "z" in second
        assert "z" in second.successors("a")

    def test_epoch_counts_publishes_not_mutations(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1_000_000, max_ratio=1_000_000.0)
        start = hybrid.epoch
        hybrid.add_node("x1", parents=["a"])
        hybrid.add_node("x2", parents=["x1"])
        hybrid.add_arc("x2", "h")
        assert hybrid.epoch == start  # nothing published yet
        hybrid.snapshot()
        assert hybrid.epoch == start + 1  # one fold for three writes
        # A clean snapshot (no pending delta) publishes nothing new.
        again = hybrid.snapshot()
        assert hybrid.epoch == start + 1
        assert again is hybrid.base

    def test_snapshot_answers_exactly(self, paper_dag):
        hybrid = HybridTCIndex.build(paper_dag, max_delta=1_000_000, max_ratio=1_000_000.0)
        hybrid.add_node("w", parents=["b"])
        hybrid.remove_arc("a", "b")
        snapshot = hybrid.snapshot()
        index = hybrid.index
        nodes = sorted(index.nodes(), key=repr)
        for node in nodes:
            assert snapshot.successors(node) == index.successors(node)
        pairs = [(u, v) for u in nodes for v in nodes]
        assert snapshot.reachable_many(pairs) == \
            [index.reachable(u, v) for u, v in pairs]
