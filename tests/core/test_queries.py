"""Tests for the higher-level query layer (LCA, disjointness, etc.)."""

import pytest

from repro.core import queries
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph


@pytest.fixture
def lattice_index():
    """A lattice-ish concept hierarchy:

            top
           /   \\
        left   right
         | \\   / |
         |  mid  |
         \\  |   /
           bottom
    """
    graph = DiGraph([
        ("top", "left"), ("top", "right"),
        ("left", "mid"), ("right", "mid"),
        ("left", "bottom-l"), ("right", "bottom-r"),
        ("mid", "bottom"),
    ])
    return IntervalTCIndex.build(graph)


class TestBasicSets:
    def test_descendants(self, lattice_index):
        assert queries.descendants(lattice_index, "left") == \
            {"mid", "bottom", "bottom-l"}

    def test_ancestors(self, lattice_index):
        assert queries.ancestors(lattice_index, "bottom") == \
            {"top", "left", "right", "mid"}

    def test_strict_reachability(self, lattice_index):
        assert not queries.strictly_reachable(lattice_index, "mid", "mid")
        assert queries.strictly_reachable(lattice_index, "top", "bottom")
        assert not queries.strictly_reachable(lattice_index, "bottom", "top")


class TestCommonSets:
    def test_common_ancestors(self, lattice_index):
        assert queries.common_ancestors(lattice_index, ["bottom-l", "bottom-r"]) \
            == {"top"}
        assert queries.common_ancestors(lattice_index, ["mid"]) == \
            {"top", "left", "right", "mid"}

    def test_common_ancestors_empty_input(self, lattice_index):
        assert queries.common_ancestors(lattice_index, []) == set()

    def test_common_descendants(self, lattice_index):
        assert queries.common_descendants(lattice_index, ["left", "right"]) == \
            {"mid", "bottom"}

    def test_common_descendants_empty_input(self, lattice_index):
        assert queries.common_descendants(lattice_index, []) == set()


class TestExtremalSets:
    def test_least_common_ancestors(self, lattice_index):
        assert queries.least_common_ancestors(lattice_index, ["mid", "bottom-l"]) \
            == {"left"}
        assert queries.least_common_ancestors(
            lattice_index, ["bottom-l", "bottom-r"]) == {"top"}

    def test_lca_of_comparable_pair_is_the_upper(self, lattice_index):
        assert queries.least_common_ancestors(lattice_index, ["top", "mid"]) == \
            {"top"}

    def test_multiple_incomparable_lcas(self):
        graph = DiGraph([("p", "x"), ("q", "x"), ("p", "y"), ("q", "y")])
        index = IntervalTCIndex.build(graph)
        assert queries.least_common_ancestors(index, ["x", "y"]) == {"p", "q"}

    def test_greatest_common_descendants(self, lattice_index):
        assert queries.greatest_common_descendants(
            lattice_index, ["left", "right"]) == {"mid"}


class TestDisjointness:
    def test_disjoint_leaves(self, lattice_index):
        assert queries.are_disjoint(lattice_index, "bottom-l", "bottom-r")

    def test_shared_descendant_not_disjoint(self, lattice_index):
        assert not queries.are_disjoint(lattice_index, "left", "right")

    def test_comparable_not_disjoint(self, lattice_index):
        assert not queries.are_disjoint(lattice_index, "top", "mid")

    def test_comparability(self, lattice_index):
        assert queries.are_comparable(lattice_index, "top", "bottom")
        assert queries.are_comparable(lattice_index, "bottom", "top")
        assert not queries.are_comparable(lattice_index, "left", "right")


class TestLevels:
    def test_levels(self, lattice_index):
        assert queries.topological_level(lattice_index, "top") == 0
        assert queries.topological_level(lattice_index, "left") == 1
        assert queries.topological_level(lattice_index, "mid") == 2
        assert queries.topological_level(lattice_index, "bottom") == 3

    def test_longest_path_wins(self):
        # z is reachable directly from root AND through a long chain.
        graph = DiGraph([("r", "z"), ("r", "a"), ("a", "b"), ("b", "z")])
        index = IntervalTCIndex.build(graph)
        assert queries.topological_level(index, "z") == 3


class TestBatch:
    def test_path_exists_batch(self, lattice_index):
        answers = queries.path_exists_batch(
            lattice_index,
            [("top", "bottom"), ("bottom", "top"), ("mid", "mid")])
        assert answers == [True, False, True]


class TestSetQueries:
    def test_reachable_from_set(self, lattice_index):
        reached = queries.reachable_from_set(lattice_index,
                                             ["bottom-l", "bottom-r"])
        assert reached == {"bottom-l", "bottom-r"}
        reached = queries.reachable_from_set(lattice_index, ["left"])
        assert reached == {"left", "mid", "bottom", "bottom-l"}

    def test_reachable_from_empty_set(self, lattice_index):
        assert queries.reachable_from_set(lattice_index, []) == set()

    def test_reaching_set(self, lattice_index):
        reaching = queries.reaching_set(lattice_index, ["bottom-l", "bottom-r"])
        assert reaching == {"top", "left", "right", "bottom-l", "bottom-r"}

    def test_reaching_set_matches_union_of_predecessors(self, lattice_index):
        for targets in (["mid"], ["bottom", "bottom-l"], ["top"]):
            expected = set()
            for target in targets:
                expected |= lattice_index.predecessors(target)
            assert queries.reaching_set(lattice_index, targets) == expected

    def test_any_reachable(self, lattice_index):
        assert queries.any_reachable(lattice_index, ["left"], ["bottom"])
        assert not queries.any_reachable(lattice_index,
                                         ["bottom-l"], ["bottom-r"])
        assert queries.any_reachable(lattice_index,
                                     ["bottom-l", "left"], ["bottom"])

    def test_any_reachable_empty(self, lattice_index):
        assert not queries.any_reachable(lattice_index, [], ["top"])
        assert not queries.any_reachable(lattice_index, ["top"], [])
