"""HopLabelIndex: 2-hop label correctness, pruning, and round trips."""

import random

import pytest

from repro import open_index
from repro.core.hoplabel import HopLabelIndex
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (hoplabel_from_dict, hoplabel_to_dict,
                                  save_hoplabel_index)
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.obs import MetricsRegistry, attach


def paper_graph() -> DiGraph:
    graph = DiGraph()
    for source, destination in [("a", "b"), ("b", "c"), ("b", "d"),
                                ("a", "e"), ("e", "d"), ("c", "f")]:
        graph.add_arc(source, destination)
    return graph


class TestCorrectness:
    def test_paper_graph_full_matrix(self):
        graph = paper_graph()
        oracle = IntervalTCIndex.build(graph)
        index = HopLabelIndex.build(graph)
        for source in graph.nodes():
            for destination in graph.nodes():
                assert index.reachable(source, destination) == \
                    oracle.reachable(source, destination), (source,
                                                            destination)

    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_dag_differential(self, seed):
        graph = random_dag(300, 1.0 + seed * 0.5, seed)
        oracle = IntervalTCIndex.build(graph)
        index = HopLabelIndex.build(graph)
        rng = random.Random(seed)
        nodes = sorted(graph.nodes(), key=repr)
        for node in rng.sample(nodes, 40):
            assert index.successors(node) == oracle.successors(node)
            assert index.predecessors(node) == oracle.predecessors(node)
        pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(200)]
        assert index.reachable_many(pairs) == oracle.reachable_many(pairs)

    def test_unknown_nodes_raise_source_first(self):
        index = HopLabelIndex.build(paper_graph())
        with pytest.raises(NodeNotFoundError):
            index.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.reachable("a", "ghost")
        with pytest.raises(NodeNotFoundError):
            index.successors("ghost")

    def test_semijoins_match_reference(self):
        graph = random_dag(200, 2.0, 42)
        oracle = IntervalTCIndex.build(graph)
        index = HopLabelIndex.build(graph)
        rng = random.Random(42)
        nodes = sorted(graph.nodes(), key=repr)
        sources = rng.sample(nodes, 5)
        destinations = rng.sample(nodes, 5)
        assert index.reachable_from_set(sources) == \
            oracle.reachable_from_set(sources)
        assert index.reaching_set(destinations) == \
            oracle.reaching_set(destinations)
        assert index.any_reachable(sources, destinations) == \
            oracle.any_reachable(sources, destinations)


class TestLabelQuality:
    def test_pruning_beats_full_closure(self):
        """2-hop labels must store far less than the materialised closure.

        On a dense 1000-node DAG (average degree 5) the pruned landmark
        pass should keep the label total several times below the
        sum-of-closure-sizes a full materialisation pays.
        """
        graph = random_dag(1000, 5.0, 7)
        index = HopLabelIndex.build(graph)
        oracle = IntervalTCIndex.build(graph)
        closure_size = sum(
            oracle.count_successors(node) for node in graph.nodes())
        assert index.num_entries < closure_size / 4
        stats = index.stats()
        assert stats["num_entries"] == index.num_entries
        assert stats["entries_per_node"] < 40

    def test_every_node_labels_itself(self):
        index = HopLabelIndex.build(paper_graph())
        for node in index.nodes():
            assert index.reachable(node, node)


class TestSerialization:
    def test_dict_round_trip(self):
        index = HopLabelIndex.build(paper_graph())
        clone = hoplabel_from_dict(hoplabel_to_dict(index))
        for source in index.nodes():
            assert clone.successors(source) == index.successors(source)

    def test_file_round_trip_via_open_index(self, tmp_path):
        path = tmp_path / "hop.json"
        save_hoplabel_index(HopLabelIndex.build(paper_graph()), path)
        loaded = open_index(path)
        assert isinstance(loaded, HopLabelIndex)
        assert loaded.reachable("a", "f")
        assert not loaded.reachable("f", "a")
        assert len(loaded) == 6


class TestObservability:
    def test_gauges_register_through_attach(self):
        registry = MetricsRegistry()
        index = attach(HopLabelIndex.build(paper_graph()),
                       metrics=registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges['tc_nodes{engine="HopLabelIndex"}'] == len(index)
        assert gauges['tc_hop_label_entries{engine="HopLabelIndex"}'] == \
            index.num_entries
