"""Tests for tree-cover construction (Alg1 and the ablation policies)."""

import pytest

from repro.core.tree_cover import (
    POLICIES,
    VIRTUAL_ROOT,
    all_tree_covers,
    build_tree_cover,
)
from repro.errors import CycleError, GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag


class TestVirtualRoot:
    def test_singleton(self):
        from repro.core.tree_cover import _VirtualRoot
        assert _VirtualRoot() is VIRTUAL_ROOT

    def test_repr(self):
        assert repr(VIRTUAL_ROOT) == "<virtual-root>"


class TestBuildBasics:
    def test_roots_hang_off_virtual_root(self, diamond):
        cover = build_tree_cover(diamond)
        assert cover.parent["a"] is VIRTUAL_ROOT
        assert cover.tree_children(VIRTUAL_ROOT) == ["a"]

    def test_every_node_has_parent(self, paper_dag):
        cover = build_tree_cover(paper_dag)
        assert set(cover.parent) == set(paper_dag.nodes())
        cover.check_spanning(paper_dag)

    def test_parents_are_graph_arcs(self, paper_dag):
        cover = build_tree_cover(paper_dag)
        for child, parent in cover.parent.items():
            if parent is not VIRTUAL_ROOT:
                assert paper_dag.has_arc(parent, child)

    def test_tree_arcs_count(self, paper_dag):
        cover = build_tree_cover(paper_dag)
        roots = sum(1 for parent in cover.parent.values() if parent is VIRTUAL_ROOT)
        assert len(list(cover.tree_arcs())) == paper_dag.num_nodes - roots

    def test_is_tree_arc(self, diamond):
        cover = build_tree_cover(diamond)
        tree_parent = cover.parent["d"]
        assert cover.is_tree_arc(tree_parent, "d")
        other = ({"b", "c"} - {tree_parent}).pop()
        assert not cover.is_tree_arc(other, "d")

    def test_depth(self, chain5):
        cover = build_tree_cover(chain5)
        assert cover.depth_of(0) == 1
        assert cover.depth_of(4) == 5

    def test_disconnected_components(self):
        graph = DiGraph([("a", "b"), ("x", "y")])
        cover = build_tree_cover(graph)
        assert cover.parent["a"] is VIRTUAL_ROOT
        assert cover.parent["x"] is VIRTUAL_ROOT
        assert len(cover.tree_children(VIRTUAL_ROOT)) == 2

    def test_cyclic_graph_rejected(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            build_tree_cover(graph)

    def test_unknown_policy(self, diamond):
        with pytest.raises(GraphError):
            build_tree_cover(diamond, "nonsense")


class TestAlg1Choice:
    def test_prefers_largest_pred_set(self):
        # d has predecessors b (pred set {a}) and c (pred set {a, b}):
        # Alg1 must pick c.
        graph = DiGraph([("a", "b"), ("a", "c"), ("b", "c"),
                         ("b", "d"), ("c", "d")])
        cover = build_tree_cover(graph, "alg1")
        assert cover.parent["d"] == "c"

    def test_tie_breaks_deterministically(self, diamond):
        covers = [build_tree_cover(diamond, "alg1") for _ in range(3)]
        assert all(c.parent == covers[0].parent for c in covers)


class TestPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_span(self, policy, paper_dag):
        cover = build_tree_cover(paper_dag, policy, rng=0)
        cover.check_spanning(paper_dag)

    def test_first_vs_last_parent(self):
        graph = DiGraph([("a", "c"), ("b", "c"), ("r", "a"), ("r", "b")])
        first = build_tree_cover(graph, "first_parent")
        last = build_tree_cover(graph, "last_parent")
        assert first.parent["c"] != last.parent["c"]

    def test_random_policy_seeded(self, paper_dag):
        one = build_tree_cover(paper_dag, "random", rng=42)
        two = build_tree_cover(paper_dag, "random", rng=42)
        assert one.parent == two.parent

    @pytest.mark.parametrize("seed", range(3))
    def test_policies_on_random_graphs(self, seed):
        graph = random_dag(40, 2, seed)
        for policy in POLICIES:
            build_tree_cover(graph, policy, rng=seed).check_spanning(graph)


class TestEnumeration:
    def test_count_is_product_of_indegrees(self, diamond):
        covers = list(all_tree_covers(diamond))
        # a has no preds (1 choice), b and c have one pred, d has two.
        assert len(covers) == 2

    def test_all_covers_are_valid(self, paper_dag):
        count = 0
        for cover in all_tree_covers(paper_dag):
            cover.check_spanning(paper_dag)
            count += 1
        expected = 1
        for node in paper_dag:
            expected *= max(1, paper_dag.in_degree(node))
        assert count == expected

    def test_alg1_cover_is_among_enumerated(self, diamond):
        alg1 = build_tree_cover(diamond, "alg1")
        assert any(cover.parent == alg1.parent for cover in all_tree_covers(diamond))


class TestMemoisedPredecessorSizes:
    """The pred-size memo is a pure speedup: Alg1 (and min_pred) must pick
    the exact cover a per-arc popcount reference picks."""

    @staticmethod
    def _reference_cover(graph, policy):
        from repro.graph.traversal import topological_order

        order = topological_order(graph)
        position = {node: i for i, node in enumerate(order)}
        pred_set = {}
        parent = {}
        for node in order:
            predecessors = sorted(graph.predecessors(node),
                                  key=position.__getitem__)
            full = set()
            for p in predecessors:
                full |= pred_set[p] | {p}
            pred_set[node] = full
            if not predecessors:
                parent[node] = VIRTUAL_ROOT
                continue
            sizes = [len(pred_set[p]) for p in predecessors]
            best = max(sizes) if policy == "alg1" else min(sizes)
            parent[node] = predecessors[sizes.index(best)]
        return parent

    @pytest.mark.parametrize("policy", ["alg1", "min_pred"])
    def test_matches_reference_on_paper_dag(self, paper_dag, policy):
        cover = build_tree_cover(paper_dag, policy)
        assert cover.parent == self._reference_cover(paper_dag, policy)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_on_random_graphs(self, seed):
        graph = random_dag(60, 2.5, seed)
        for policy in ("alg1", "min_pred"):
            cover = build_tree_cover(graph, policy)
            assert cover.parent == self._reference_cover(graph, policy)
