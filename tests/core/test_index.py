"""Unit tests for IntervalTCIndex: build, queries, accounting, verification."""

import pytest

from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.core.tree_cover import POLICIES
from repro.errors import CycleError, IndexStateError, NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.traversal import reachable_from


class TestBuild:
    def test_build_default(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        assert index.gap == DEFAULT_GAP
        assert index.policy == "alg1"
        index.check_invariants()
        index.verify()

    def test_from_arcs(self):
        index = IntervalTCIndex.from_arcs([("x", "y"), ("y", "z")])
        assert index.reachable("x", "z")

    def test_cyclic_input_rejected(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            IntervalTCIndex.build(graph)

    def test_empty_graph(self):
        index = IntervalTCIndex.build(DiGraph())
        assert len(index) == 0
        assert index.num_intervals == 0

    def test_single_node(self):
        index = IntervalTCIndex.build(DiGraph(nodes=["only"]))
        assert index.reachable("only", "only")
        assert index.successors("only") == {"only"}

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_are_correct(self, policy, paper_dag):
        index = IntervalTCIndex.build(paper_dag, policy=policy, rng=1)
        index.verify()

    @pytest.mark.parametrize("gap", [1, 2, 17, 1024])
    def test_any_gap_is_correct(self, gap, paper_dag):
        index = IntervalTCIndex.build(paper_dag, gap=gap)
        index.verify()
        assert index.gap == gap


class TestReachable:
    def test_reflexive(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        for node in paper_dag:
            assert index.reachable(node, node)

    def test_matches_ground_truth(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        for source in paper_dag:
            truth = reachable_from(paper_dag, source)
            for destination in paper_dag:
                assert index.reachable(source, destination) == (destination in truth)

    def test_unknown_nodes(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        with pytest.raises(NodeNotFoundError):
            index.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.reachable("a", "ghost")


class TestSuccessors:
    def test_reflexive_and_strict(self, diamond):
        index = IntervalTCIndex.build(diamond)
        assert index.successors("a") == {"a", "b", "c", "d"}
        assert index.successors("a", reflexive=False) == {"b", "c", "d"}
        assert index.successors("d", reflexive=False) == set()

    def test_count_successors(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        for node in paper_dag:
            assert index.count_successors(node) == len(index.successors(node))
            assert index.count_successors(node, reflexive=False) == \
                len(index.successors(node)) - 1

    def test_count_successors_with_overlapping_intervals(self):
        graph = random_dag(60, 3, 4)
        index = IntervalTCIndex.build(graph, gap=1, merge=True)
        for node in list(graph.nodes())[:20]:
            assert index.count_successors(node) == len(index.successors(node))

    def test_unknown_node(self, diamond):
        index = IntervalTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.successors("ghost")
        with pytest.raises(NodeNotFoundError):
            index.count_successors("ghost")
        with pytest.raises(NodeNotFoundError):
            next(index.iter_successors("ghost"))

    def test_iter_successors_matches_set(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        for node in paper_dag:
            lazy = list(index.iter_successors(node))
            assert len(lazy) == len(set(lazy))          # duplicate-free
            assert set(lazy) == index.successors(node)
            assert set(index.iter_successors(node, reflexive=False)) == \
                index.successors(node, reflexive=False)

    def test_iter_successors_with_overlapping_intervals(self):
        graph = random_dag(50, 3, 8)
        index = IntervalTCIndex.build(graph, gap=1, merge=True)
        for node in list(graph.nodes())[:15]:
            lazy = list(index.iter_successors(node))
            assert len(lazy) == len(set(lazy))
            assert set(lazy) == index.successors(node)

    def test_iter_successors_is_lazy(self, chain5):
        index = IntervalTCIndex.build(chain5)
        iterator = index.iter_successors(0)
        assert next(iterator) is not None   # no full materialisation needed


class TestPredecessors:
    def test_basic(self, diamond):
        index = IntervalTCIndex.build(diamond)
        assert index.predecessors("d") == {"a", "b", "c", "d"}
        assert index.predecessors("d", reflexive=False) == {"a", "b", "c"}
        assert index.predecessors("a", reflexive=False) == set()

    def test_matches_reverse_ground_truth(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        reversed_graph = paper_dag.reverse()
        for node in paper_dag:
            assert index.predecessors(node) == reachable_from(reversed_graph, node)

    def test_unknown_node(self, diamond):
        with pytest.raises(NodeNotFoundError):
            IntervalTCIndex.build(diamond).predecessors("ghost")


class TestAccounting:
    def test_tree_costs_one_interval_per_node(self):
        tree = random_tree(50, 3)
        index = IntervalTCIndex.build(tree)
        assert index.num_intervals == 50
        assert index.storage_units == 100

    def test_stats_consistency(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        stats = index.stats()
        assert stats.num_nodes == paper_dag.num_nodes
        assert stats.num_arcs == paper_dag.num_arcs
        assert stats.num_intervals == stats.num_tree_intervals + \
            stats.num_non_tree_intervals
        assert stats.num_tree_intervals == paper_dag.num_nodes
        assert stats.storage_units == 2 * stats.num_intervals
        assert stats.policy == "alg1"
        assert stats.as_dict()["num_nodes"] == paper_dag.num_nodes
        assert stats.max_intervals_per_node >= 1
        assert stats.numbering == "integer"

    def test_tree_depth_stat(self, chain5):
        stats = IntervalTCIndex.build(chain5).stats()
        assert stats.tree_depth == 5

    def test_max_intervals_stat(self):
        from repro.graph.generators import bipartite_worst_case
        index = IntervalTCIndex.build(bipartite_worst_case(4, 5))
        # Every source holds one interval per uncovered sink + its own.
        assert index.stats().max_intervals_per_node == 6

    def test_merge_never_increases(self, paper_dag):
        plain = IntervalTCIndex.build(paper_dag, gap=1)
        merged = IntervalTCIndex.build(paper_dag, gap=1, merge=True)
        assert merged.num_intervals <= plain.num_intervals
        merged.verify()


class TestContainerProtocol:
    def test_contains_len_nodes(self, diamond):
        index = IntervalTCIndex.build(diamond)
        assert "a" in index and "ghost" not in index
        assert len(index) == 4
        assert set(index.nodes()) == set(diamond.nodes())


class TestVerification:
    def test_verify_detects_corruption(self, diamond):
        index = IntervalTCIndex.build(diamond)
        # Corrupt: drop all intervals from a node that has successors.
        from repro.core.intervals import IntervalSet, Interval
        index.intervals["a"] = IntervalSet(
            [Interval(index.postorder["a"], index.postorder["a"])])
        with pytest.raises(IndexStateError):
            index.verify()

    def test_check_invariants_detects_desync(self, diamond):
        index = IntervalTCIndex.build(diamond)
        index.used_numbers.append(10**9)
        with pytest.raises(IndexStateError):
            index.check_invariants()

    def test_rebuild_equivalent(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        rebuilt = index.rebuild()
        for source in paper_dag:
            assert index.successors(source) == rebuilt.successors(source)
