"""Property tests: the hybrid engine always equals an independent rebuild.

Same random-DAG strategy as ``test_frozen_property.py``, plus a drawn
mutation script.  Each example drives a :class:`HybridTCIndex` through
the script and checks the full query surface against a from-scratch
:class:`IntervalTCIndex` built over the resulting graph — and that
:meth:`compact` never changes a single answer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph


@st.composite
def small_dags(draw):
    """Arbitrary DAGs: arcs forced forward along a drawn permutation."""
    n = draw(st.integers(1, 12))
    permutation = draw(st.permutations(range(n)))
    rank = {node: position for position, node in enumerate(permutation)}
    pair_list = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=30))
    graph = DiGraph(nodes=range(n))
    for a, b in pair_list:
        if a == b:
            continue
        if rank[a] > rank[b]:
            a, b = b, a
        graph.add_arc(a, b)
    return graph


# Op descriptors are drawn abstractly (kind + integer picks) and resolved
# against the live node set at apply time, so shrinking stays meaningful.
ops = st.lists(
    st.tuples(st.sampled_from(["add_arc", "add_node", "remove_arc",
                               "remove_node", "compact"]),
              st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
    max_size=25)


def apply_script(hybrid, script):
    """Resolve and apply each drawn op; inapplicable draws are skipped."""
    next_label = 1000
    for kind, first, second in script:
        nodes = sorted(hybrid.index.nodes(), key=repr)
        if kind == "compact":
            hybrid.compact()
            continue
        if kind == "add_node":
            budget = first % 3
            parents = [nodes[(first + i) % len(nodes)]
                       for i in range(min(budget, len(nodes)))]
            hybrid.add_node(next_label, parents=sorted(set(parents),
                                                       key=repr))
            next_label += 1
            continue
        if not nodes:
            continue
        if kind == "add_arc":
            source = nodes[first % len(nodes)]
            destination = nodes[second % len(nodes)]
            if source != destination \
                    and not hybrid.graph.has_arc(source, destination) \
                    and not hybrid.index.reachable(destination, source):
                hybrid.add_arc(source, destination)
        elif kind == "remove_arc":
            arcs = sorted(hybrid.graph.arcs(), key=repr)
            if arcs:
                hybrid.remove_arc(*arcs[first % len(arcs)])
        elif kind == "remove_node":
            if len(nodes) > 1:
                hybrid.remove_node(nodes[first % len(nodes)])


def assert_matches_rebuild(hybrid):
    rebuilt = IntervalTCIndex.build(
        DiGraph(arcs=hybrid.graph.arcs(), nodes=hybrid.graph.nodes()))
    for node in rebuilt.nodes():
        assert hybrid.successors(node) == rebuilt.successors(node)
        assert hybrid.predecessors(node) == rebuilt.predecessors(node)


@settings(max_examples=60, deadline=None)
@given(small_dags(), ops, st.sampled_from([2, 6, 1000]))
def test_hybrid_equals_rebuild_under_churn(graph, script, max_delta):
    hybrid = HybridTCIndex.build(graph, max_delta=max_delta,
                                 max_ratio=1000.0)
    apply_script(hybrid, script)
    assert_matches_rebuild(hybrid)


@settings(max_examples=60, deadline=None)
@given(small_dags(), ops)
def test_compact_is_a_query_level_noop(graph, script):
    """Whatever state the overlay is in, folding it changes no answer."""
    hybrid = HybridTCIndex.build(graph, max_delta=1000, max_ratio=1000.0)
    apply_script(hybrid, script)
    nodes = sorted(hybrid.index.nodes(), key=repr)
    pairs = [(u, v) for u in nodes for v in nodes]
    before_many = hybrid.reachable_many(pairs)
    before = {node: (hybrid.successors(node), hybrid.predecessors(node),
                     hybrid.count_successors(node)) for node in nodes}
    was_tainted = hybrid.tainted
    hybrid.compact()
    assert not hybrid.tainted
    assert hybrid.delta_size == 0
    assert hybrid.reachable_many(pairs) == before_many
    for node in nodes:
        assert hybrid.successors(node) == before[node][0]
        assert hybrid.predecessors(node) == before[node][1]
        assert hybrid.count_successors(node) == before[node][2]
    if was_tainted:
        assert_matches_rebuild(hybrid)


@settings(max_examples=40, deadline=None)
@given(small_dags(), ops)
def test_auto_compact_on_query_stays_exact(graph, script):
    hybrid = HybridTCIndex.build(graph, max_delta=2, max_ratio=1000.0,
                                 auto_compact_on_query=True)
    apply_script(hybrid, script)
    assert_matches_rebuild(hybrid)
