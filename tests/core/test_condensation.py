"""Tests for the cyclic-graph wrapper (SCC condensation index)."""

import random

import pytest

from repro.core.condensation import CondensedIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import ancestors_of, reachable_from


class TestBasics:
    def test_simple_cycle(self):
        graph = DiGraph([("a", "b"), ("b", "a"), ("b", "c")])
        index = CondensedIndex.build(graph)
        assert index.reachable("a", "b") and index.reachable("b", "a")
        assert index.reachable("a", "c")
        assert not index.reachable("c", "a")
        assert index.num_components == 2

    def test_acyclic_graph_works_too(self, paper_dag):
        index = CondensedIndex.build(paper_dag)
        for source in paper_dag:
            assert index.successors(source) == reachable_from(paper_dag, source)

    def test_component_of(self):
        graph = DiGraph([("a", "b"), ("b", "a"), ("x", "a")])
        index = CondensedIndex.build(graph)
        assert index.component_of("a") == frozenset(["a", "b"])
        assert index.component_of("x") == frozenset(["x"])
        with pytest.raises(NodeNotFoundError):
            index.component_of("ghost")

    def test_reflexive_inside_component(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        index = CondensedIndex.build(graph)
        assert index.reachable("a", "a")
        # Irreflexive view: a genuinely reaches itself through the cycle.
        assert "a" in index.successors("a", reflexive=False)

    def test_irreflexive_for_singletons(self):
        graph = DiGraph([("a", "b")])
        index = CondensedIndex.build(graph)
        assert "a" not in index.successors("a", reflexive=False)
        assert "b" not in index.predecessors("b", reflexive=False)

    def test_storage_units_counts_condensation(self):
        graph = DiGraph([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")])
        index = CondensedIndex.build(graph)
        assert index.storage_units == index.dag_index.storage_units


class TestRandomCyclicGraphs:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_pointer_chasing(self, seed):
        rng = random.Random(seed)
        graph = DiGraph(nodes=range(25))
        for _ in range(55):
            a, b = rng.randrange(25), rng.randrange(25)
            if a != b:
                graph.add_arc(a, b)
        index = CondensedIndex.build(graph)
        for source in graph:
            assert index.successors(source) == reachable_from(graph, source), source

    @pytest.mark.parametrize("seed", range(4))
    def test_predecessors_match(self, seed):
        rng = random.Random(seed + 50)
        graph = DiGraph(nodes=range(18))
        for _ in range(40):
            a, b = rng.randrange(18), rng.randrange(18)
            if a != b:
                graph.add_arc(a, b)
        index = CondensedIndex.build(graph)
        for node in graph:
            assert index.predecessors(node) == ancestors_of(graph, node)


class TestUpdates:
    def test_add_node(self):
        index = CondensedIndex.build(DiGraph([("a", "b")]))
        index.add_node("island")
        assert index.reachable("island", "island")
        assert not index.reachable("a", "island")
        index.verify()

    def test_duplicate_node_rejected(self):
        from repro.errors import IndexStateError
        index = CondensedIndex.build(DiGraph([("a", "b")]))
        with pytest.raises(IndexStateError):
            index.add_node("a")

    def test_incremental_cross_component_arc(self):
        index = CondensedIndex.build(DiGraph([("a", "b"), ("x", "y")]))
        assert index.add_arc("b", "x") is True
        assert index.reachable("a", "y")
        index.verify()

    def test_internal_arc_is_cheap(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        index = CondensedIndex.build(graph)
        assert index.add_arc("a", "c") is True
        index.verify()

    def test_cycle_closing_arc_rebuilds(self):
        index = CondensedIndex.build(DiGraph([("a", "b"), ("b", "c")]))
        assert index.add_arc("c", "a") is False    # merges {a,b,c}
        assert index.num_components == 1
        assert index.reachable("c", "b")
        index.verify()

    def test_new_endpoints_created(self):
        index = CondensedIndex.build(DiGraph([("a", "b")]))
        index.add_arc("b", "fresh")
        assert index.reachable("a", "fresh")
        index.verify()

    def test_remove_arc_can_split_component(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        index = CondensedIndex.build(graph)
        assert index.num_components == 1
        index.remove_arc("c", "a")
        assert index.num_components == 3
        assert index.reachable("a", "c")
        assert not index.reachable("c", "a")
        index.verify()

    def test_remove_node(self):
        index = CondensedIndex.build(DiGraph([("a", "b"), ("b", "c")]))
        index.remove_node("b")
        assert not index.reachable("a", "c")
        index.verify()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_update_stream(self, seed):
        rng = random.Random(seed)
        index = CondensedIndex.build(DiGraph(nodes=range(10)))
        for step in range(40):
            roll = rng.random()
            nodes = list(index.graph.nodes())
            if roll < 0.55:
                a, b = rng.sample(nodes, 2)
                index.add_arc(a, b)
            elif roll < 0.75 and index.graph.num_arcs:
                index.remove_arc(*rng.choice(list(index.graph.arcs())))
            elif roll < 0.9:
                index.add_node(("n", step))
            elif len(nodes) > 3:
                index.remove_node(rng.choice(nodes))
        index.verify()


class TestBigCycle:
    def test_one_giant_component(self):
        n = 300
        graph = DiGraph([(i, (i + 1) % n) for i in range(n)])
        index = CondensedIndex.build(graph)
        assert index.num_components == 1
        assert index.successors(0) == set(range(n))
        assert index.reachable(n - 1, 0)
