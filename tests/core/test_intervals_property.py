"""Property-based tests: IntervalSet behaves like a naive point-set model."""

from hypothesis import given, strategies as st

from repro.core.intervals import Interval, IntervalSet, intervals_from_points

intervals = st.tuples(st.integers(0, 60), st.integers(0, 60)).map(
    lambda bounds: Interval(min(bounds), max(bounds))
)
interval_lists = st.lists(intervals, max_size=25)


def naive_coverage(interval_list):
    """The reference model: the set of covered integers."""
    covered = set()
    for interval in interval_list:
        covered.update(range(interval.lo, interval.hi + 1))
    return covered


@given(interval_lists)
def test_coverage_matches_naive_model(interval_list):
    interval_set = IntervalSet(interval_list)
    expected = naive_coverage(interval_list)
    for point in range(-1, 63):
        assert interval_set.covers(point) == (point in expected)


@given(interval_lists)
def test_invariants_hold_after_any_add_sequence(interval_list):
    interval_set = IntervalSet()
    for interval in interval_list:
        interval_set.add(interval)
        interval_set.check_invariants()


@given(interval_lists)
def test_no_subsumption_survives(interval_list):
    interval_set = IntervalSet(interval_list)
    stored = list(interval_set)
    for first in stored:
        for second in stored:
            if first != second:
                assert not first.subsumes(second)


@given(interval_lists)
def test_add_returns_false_iff_no_change(interval_list):
    interval_set = IntervalSet()
    for interval in interval_list:
        before = list(interval_set)
        changed = interval_set.add(interval)
        assert changed == (list(interval_set) != before)


@given(interval_lists)
def test_merged_preserves_coverage_and_shrinks(interval_list):
    interval_set = IntervalSet(interval_list)
    merged = interval_set.merged()
    merged.check_invariants()
    assert len(merged) <= len(interval_set)
    for point in range(-1, 63):
        assert merged.covers(point) == interval_set.covers(point)


@given(interval_lists)
def test_merged_is_idempotent(interval_list):
    merged = IntervalSet(interval_list).merged()
    assert merged.merged() == merged


@given(interval_lists)
def test_storage_units_is_twice_count(interval_list):
    interval_set = IntervalSet(interval_list)
    assert interval_set.storage_units == 2 * len(interval_set)


@given(interval_lists)
def test_insertion_order_is_irrelevant(interval_list):
    forward = IntervalSet(interval_list)
    backward = IntervalSet(reversed(interval_list))
    for point in range(-1, 63):
        assert forward.covers(point) == backward.covers(point)


@given(st.sets(st.integers(0, 100), max_size=40))
def test_intervals_from_points_exact(points):
    interval_set = intervals_from_points(points)
    interval_set.check_invariants()
    for point in range(-1, 103):
        assert interval_set.covers(point) == (point in points)
    # Minimality: merged form cannot shrink further.
    assert interval_set.merged() == interval_set


@given(interval_lists, interval_lists)
def test_add_all_equals_sequential_add(existing, incoming):
    """The sort-then-sweep bulk path lands on the same canonical set as
    one-at-a-time insertion, and reports change identically."""
    bulk = IntervalSet(existing)
    sequential = IntervalSet(existing)
    changed_bulk = bulk.add_all(incoming)
    changed_sequential = False
    for interval in incoming:
        changed_sequential |= sequential.add(interval)
    assert list(bulk) == list(sequential)
    assert changed_bulk == changed_sequential
    bulk.check_invariants()


@given(interval_lists, st.integers(0, 60))
def test_discard_containing_model(interval_list, point):
    interval_set = IntervalSet(interval_list)
    kept_before = [iv for iv in interval_set if not (iv.lo <= point <= iv.hi)]
    removed = interval_set.discard_containing(point)
    assert all(interval.lo <= point <= interval.hi for interval in removed)
    assert list(interval_set) == kept_before
