"""Property tests: random update streams never break index exactness.

The strongest guarantee the Section 4 algorithms can offer is that after
*any* sequence of insertions and deletions the index answers exactly what
pointer chasing answers.  Hypothesis drives random operation streams
against small indexes and verifies after every single operation.
"""

from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_from

# Operation encoding: (kind, a, b) with integers mapped onto live nodes.
operations = st.lists(
    st.tuples(st.sampled_from(["add_node", "add_node2", "add_arc",
                               "del_arc", "del_node"]),
              st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
    max_size=18,
)

seed_dags = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=14,
).map(lambda pairs: DiGraph(
    nodes=range(8),
    arcs=[(min(a, b), max(a, b)) for a, b in pairs if a != b],
))


def apply_operation(index, operation, counter):
    """Translate an abstract operation onto the current index state."""
    kind, a, b = operation
    nodes = sorted(index.nodes(), key=str)
    if not nodes:
        index.add_node(("seed", counter))
        return
    pick_a = nodes[a % len(nodes)]
    pick_b = nodes[b % len(nodes)]
    if kind == "add_node":
        index.add_node(("n", counter), parents=[pick_a])
    elif kind == "add_node2":
        parents = [pick_a] if pick_a == pick_b else [pick_a, pick_b]
        index.add_node(("n", counter), parents=parents)
    elif kind == "add_arc":
        if pick_a != pick_b and not index.graph.has_arc(pick_a, pick_b) \
                and not index.reachable(pick_b, pick_a):
            index.add_arc(pick_a, pick_b)
    elif kind == "del_arc":
        arcs = sorted(index.graph.arcs(), key=str)
        if arcs:
            index.remove_arc(*arcs[a % len(arcs)])
    elif kind == "del_node":
        if len(nodes) > 1:
            index.remove_node(pick_a)


def assert_exact(index):
    for source in index.nodes():
        assert index.successors(source) == reachable_from(index.graph, source)


@settings(max_examples=40)
@given(seed_dags, operations, st.sampled_from([1, 4, 32]))
def test_stream_preserves_exactness(graph, stream, gap):
    index = IntervalTCIndex.build(graph, gap=gap)
    for counter, operation in enumerate(stream):
        apply_operation(index, operation, counter)
        index.check_invariants()
        assert_exact(index)


@settings(max_examples=25)
@given(seed_dags, operations)
def test_stream_on_merged_index(graph, stream):
    index = IntervalTCIndex.build(graph, gap=8, merge=True)
    for counter, operation in enumerate(stream):
        apply_operation(index, operation, counter)
    index.check_invariants()
    assert_exact(index)


@settings(max_examples=25)
@given(seed_dags, operations)
def test_stream_then_renumber_then_rebuild_agree(graph, stream):
    index = IntervalTCIndex.build(graph, gap=8)
    for counter, operation in enumerate(stream):
        apply_operation(index, operation, counter)
    updated_answers = {node: index.successors(node) for node in index.nodes()}
    index.renumber()
    assert {node: index.successors(node) for node in index.nodes()} == updated_answers
    rebuilt = index.rebuild()
    assert {node: rebuilt.successors(node) for node in rebuilt.nodes()} == updated_answers
    # Rebuild restores optimality: never more intervals than the drifted index.
    assert rebuilt.num_intervals <= index.num_intervals
