"""Vectorized interval propagation must equal the sequential pass bit
for bit: same graph, same gap => identical interval sets on every node.

The python implementation (:func:`repro.core.labeling.propagate_intervals`)
is the reference; the vectorized kernel replays the same reverse
topological order as per-level segmented sweeps, and the parallel mode
additionally splits each sweep across worker processes.  Any divergence
is an indexing bug, so these tests compare the *full* label tables, not
just query answers.
"""

import random

import pytest

from repro.core.frozen import default_backend
from repro.core.index import IntervalTCIndex
from repro.core.propagation import (PROPAGATION_MODES,
                                    propagate_intervals_vectorized,
                                    run_propagation)
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_dag_local

HAVE_NUMPY = default_backend() == "numpy"

MODES = [mode for mode in PROPAGATION_MODES if mode != "python"]


def interval_table(index):
    return {node: sorted(index.intervals[node])
            for node in index.graph.nodes()}


def graphs():
    rng = random.Random(20260808)
    yield "paper", DiGraph(arcs=[("a", "b"), ("b", "c"), ("b", "d"),
                                 ("a", "e"), ("e", "d"), ("c", "f")])
    yield "chain", DiGraph(arcs=[(i, i + 1) for i in range(40)])
    yield "diamond-stack", DiGraph(
        arcs=[(i, i + 1 + (i % 2)) for i in range(30)]
        + [(i, i + 2) for i in range(0, 30, 2)])
    yield "empty", DiGraph()
    yield "singletons", DiGraph(nodes=["x", "y", "z"])
    for seed in (1, 7, 23):
        yield f"dag-{seed}", random_dag(120, 2.5, random.Random(seed))
    yield "local", random_dag_local(90, 3.0, rng, window=12)
    yield "dense", random_dag(45, 6.0, rng)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized kernel needs numpy")
class TestParity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("gap", [1, 4, 32])
    def test_full_table_parity(self, mode, gap):
        for name, graph in graphs():
            reference = IntervalTCIndex.build(graph, gap=gap)
            candidate = IntervalTCIndex.build(graph, gap=gap,
                                              propagation=mode)
            assert interval_table(candidate) == interval_table(reference), \
                f"{mode} diverged from python on {name!r} at gap={gap}"
            assert candidate.postorder == reference.postorder

    @pytest.mark.parametrize("mode", MODES)
    def test_queries_after_vectorized_build(self, mode):
        graph = random_dag(150, 3.0, random.Random(5))
        reference = IntervalTCIndex.build(graph)
        candidate = IntervalTCIndex.build(graph, propagation=mode)
        nodes = sorted(graph.nodes())
        for node in nodes[::7]:
            assert candidate.successors(node) == reference.successors(node)
            assert (candidate.predecessors(node)
                    == reference.predecessors(node))

    @pytest.mark.parametrize("policy", ["alg1", "min_pred"])
    def test_parity_across_tree_cover_policies(self, policy):
        graph = random_dag(100, 2.0, random.Random(9))
        reference = IntervalTCIndex.build(graph, policy=policy)
        candidate = IntervalTCIndex.build(graph, policy=policy,
                                          propagation="vectorized")
        assert interval_table(candidate) == interval_table(reference)

    def test_frozen_views_are_bit_identical(self):
        from repro.core.rtcf import rtcf_bytes
        graph = random_dag(80, 2.5, random.Random(2))
        python_bytes = rtcf_bytes(IntervalTCIndex.build(graph).freeze())
        vector_bytes = rtcf_bytes(
            IntervalTCIndex.build(graph, propagation="vectorized").freeze())
        assert python_bytes == vector_bytes


class TestDispatch:
    def test_unknown_mode_rejected(self):
        graph = DiGraph(arcs=[("a", "b")])
        with pytest.raises(ReproError, match="propagation"):
            IntervalTCIndex.build(graph, propagation="simd")

    def test_python_mode_is_the_default(self):
        graph = DiGraph(arcs=[("a", "b")])
        built = IntervalTCIndex.build(graph)
        explicit = IntervalTCIndex.build(graph, propagation="python")
        assert interval_table(built) == interval_table(explicit)

    def test_vectorized_falls_back_without_numpy(self, monkeypatch):
        """A numpy-free interpreter still serves the mode: the kernel
        degrades to the sequential pass instead of crashing."""
        import repro.core.frozen as frozen_module
        import repro.core.propagation as propagation_module
        monkeypatch.setattr(frozen_module, "_NUMPY_PROBED", True)
        monkeypatch.setattr(frozen_module, "_np", None)
        assert propagation_module._numpy() is None
        graph = DiGraph(arcs=[("a", "b"), ("b", "c"), ("a", "c")])
        built = IntervalTCIndex.build(graph, propagation="vectorized")
        assert built.successors("a") == {"a", "b", "c"}

    def test_run_propagation_signature(self):
        """The dispatcher is what build() and label_graph() call; it must
        accept every advertised mode."""
        from repro.core.labeling import assign_postorder
        from repro.core.tree_cover import build_tree_cover
        for mode in PROPAGATION_MODES:
            graph = DiGraph(arcs=[("a", "b"), ("a", "c"), ("b", "c")])
            cover = build_tree_cover(graph)
            labeling = assign_postorder(cover, gap=8)
            run_propagation(graph, cover, labeling, mode)
            assert labeling.intervals["a"].covers(
                labeling.postorder["c"])


@pytest.mark.skipif(not HAVE_NUMPY, reason="parallel sweep needs numpy")
class TestParallelSweep:
    def test_forced_parallel_matches_sequential(self):
        """Drop the size floor so the pool really runs, then compare
        against the plain vectorized build."""
        import repro.core.propagation as propagation_module
        graph = random_dag(200, 3.0, random.Random(31))
        reference = IntervalTCIndex.build(graph, gap=4)
        original = propagation_module.PARALLEL_MIN_ITEMS
        propagation_module.PARALLEL_MIN_ITEMS = 0
        try:
            candidate = IntervalTCIndex.build(graph, gap=4,
                                              propagation="parallel")
        finally:
            propagation_module.PARALLEL_MIN_ITEMS = original
        assert interval_table(candidate) == interval_table(reference)
