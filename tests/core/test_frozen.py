"""The frozen flat-array engine: parity, staleness, batches, persistence."""

from __future__ import annotations

import pytest

from repro.core import queries
from repro.core.batch import apply_diff
from repro.core.frozen import BACKENDS, FrozenTCIndex, default_backend
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (
    frozen_to_dict,
    index_to_dict,
    index_from_dict,
    save_frozen_index,
    save_index,
)
from repro.factory import open_index
from repro.errors import IndexStateError, NodeNotFoundError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

try:
    import numpy  # noqa: F401 - availability probe only
    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

@pytest.fixture(params=[
    pytest.param("array", id="array"),
    pytest.param("numpy", id="numpy",
                 marks=pytest.mark.skipif(not HAVE_NUMPY,
                                          reason="numpy not installed")),
])
def backend(request) -> str:
    """Both buffer backends (numpy skipped when absent)."""
    return request.param


@pytest.fixture
def paper_index(paper_dag) -> IntervalTCIndex:
    return IntervalTCIndex.build(paper_dag)


# ----------------------------------------------------------------------
# parity with the mutable engine
# ----------------------------------------------------------------------
def test_matches_mutable_on_fixture(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    for u in paper_index.nodes():
        assert frozen.successors(u) == paper_index.successors(u)
        assert frozen.successors(u, reflexive=False) == \
            paper_index.successors(u, reflexive=False)
        assert frozen.predecessors(u) == paper_index.predecessors(u)
        assert frozen.count_successors(u) == paper_index.count_successors(u)
        assert list(frozen.iter_successors(u)) == \
            sorted(frozen.successors(u),
                   key=lambda node: frozen._id(node))
        for v in paper_index.nodes():
            assert frozen.reachable(u, v) == paper_index.reachable(u, v)


def test_matches_mutable_on_random_dags(backend):
    for seed in range(4):
        graph = random_dag(80, 2.0, seed)
        index = IntervalTCIndex.build(graph, gap=(1 if seed % 2 else 32))
        frozen = index.freeze(backend=backend)
        for node in graph.nodes():
            assert frozen.successors(node) == index.successors(node)
            assert frozen.predecessors(node) == index.predecessors(node)


def test_fractional_numbering_freezes(backend):
    index = IntervalTCIndex.build(DiGraph([("a", "b"), ("b", "c")]),
                                  numbering="fractional", gap=4)
    index.add_node("d", parents=["a"])
    frozen = index.freeze(backend=backend)
    for node in index.nodes():
        assert frozen.successors(node) == index.successors(node)


def test_membership_and_interning(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    assert len(frozen) == len(paper_index)
    assert "a" in frozen and "nope" not in frozen
    assert set(frozen.nodes()) == set(paper_index.nodes())
    with pytest.raises(NodeNotFoundError):
        frozen.reachable("a", "nope")
    with pytest.raises(NodeNotFoundError):
        frozen.successors("nope")
    with pytest.raises(NodeNotFoundError):
        frozen.predecessors("nope")


def test_empty_index(backend):
    frozen = IntervalTCIndex.build(DiGraph()).freeze(backend=backend)
    assert len(frozen) == 0
    assert frozen.reachable_many([]) == []
    assert frozen.reachable_from_set([]) == set()
    assert not frozen.any_reachable([], [])


# ----------------------------------------------------------------------
# batch and set-semijoin APIs
# ----------------------------------------------------------------------
def test_reachable_many(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    nodes = list(paper_index.nodes())
    pairs = [(u, v) for u in nodes for v in nodes]
    assert frozen.reachable_many(pairs) == \
        [paper_index.reachable(u, v) for u, v in pairs]
    assert frozen.reachable_many(iter(pairs[:5])) == \
        [paper_index.reachable(u, v) for u, v in pairs[:5]]


def test_reachable_many_unknown_node(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    with pytest.raises(NodeNotFoundError):
        frozen.reachable_many([("a", "b"), ("a", "nope")])


def test_reachable_many_integer_labels(backend):
    """Integer labels exercise the numpy LUT translation path."""
    graph = random_dag(120, 2.0, 11)
    index = IntervalTCIndex.build(graph)
    frozen = index.freeze(backend=backend)
    nodes = list(graph.nodes())
    pairs = [(u, v) for u in nodes[:25] for v in nodes[:25]]
    assert frozen.reachable_many(pairs) == \
        [index.reachable(u, v) for u, v in pairs]
    with pytest.raises(NodeNotFoundError):
        frozen.reachable_many([(nodes[0], 10 ** 9)])


def test_successors_predecessors_many(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    nodes = list(paper_index.nodes())
    assert frozen.successors_many(nodes) == \
        [paper_index.successors(node) for node in nodes]
    assert frozen.predecessors_many(nodes, reflexive=False) == \
        [paper_index.predecessors(node, reflexive=False) for node in nodes]


def test_set_semijoins(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    assert frozen.reachable_from_set(["b", "c"]) == \
        paper_index.successors("b") | paper_index.successors("c")
    assert frozen.reaching_set(["h"]) == paper_index.predecessors("h")
    assert frozen.reaching_set(["d", "g"]) == \
        paper_index.predecessors("d") | paper_index.predecessors("g")
    assert frozen.any_reachable(["b"], ["h"])
    assert not frozen.any_reachable(["g"], ["d", "e", "h"])
    assert not frozen.any_reachable(["a"], [])


def test_are_disjoint(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    for u in paper_index.nodes():
        for v in paper_index.nodes():
            expected = not (paper_index.successors(u)
                            & paper_index.successors(v))
            assert frozen.are_disjoint(u, v) == expected, (u, v)


# ----------------------------------------------------------------------
# staleness protocol
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mutate", [
    pytest.param(lambda ix: ix.add_arc("g", "h"), id="add_arc"),
    pytest.param(lambda ix: ix.add_node("z", parents=["a"]), id="add_node"),
    pytest.param(lambda ix: ix.remove_arc("c", "e"), id="remove_arc"),
    pytest.param(lambda ix: ix.remove_node("d"), id="remove_node"),
    pytest.param(lambda ix: ix.renumber(gap=8), id="renumber"),
    pytest.param(lambda ix: apply_diff(ix, "+ g h\n- b d\n"), id="apply_diff"),
])
def test_updates_invalidate_frozen_view(paper_index, mutate):
    frozen = paper_index.freeze()
    assert not frozen.is_stale()
    assert paper_index.frozen_view() is frozen
    mutate(paper_index)
    assert frozen.is_stale()
    assert paper_index.frozen_view() is None
    with pytest.raises(IndexStateError):
        frozen.reachable("a", "b")
    with pytest.raises(IndexStateError):
        frozen.reachable_many([("a", "b")])
    with pytest.raises(IndexStateError):
        frozen.predecessors("b")


def test_refreeze_after_update(paper_index):
    frozen = paper_index.freeze()
    paper_index.add_node("z", parents=["h"])
    fresh = paper_index.freeze()
    assert fresh is not frozen
    assert fresh.reachable("a", "z")
    for node in paper_index.nodes():
        assert fresh.successors(node) == paper_index.successors(node)


def test_freeze_caches_while_fresh(paper_index):
    first = paper_index.freeze()
    assert paper_index.freeze() is first
    forced = paper_index.freeze(force=True)
    assert forced is not first
    assert paper_index.freeze() is forced


def test_freeze_backend_mismatch_recompiles(paper_index):
    arr = paper_index.freeze(backend="array")
    assert paper_index.freeze(backend="array") is arr
    other = paper_index.freeze(backend=default_backend())
    if default_backend() != "array":
        assert other is not arr


def test_unknown_backend_rejected(paper_index):
    with pytest.raises(ReproError):
        paper_index.freeze(backend="arrow")
    assert "arrow" not in BACKENDS


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_frozen_round_trip(paper_index, backend, tmp_path):
    frozen = paper_index.freeze(backend=backend)
    path = tmp_path / "frozen.json"
    save_frozen_index(frozen, path)
    loaded = open_index(path, engine="frozen", backend=backend)
    assert loaded.backend == backend
    for u in paper_index.nodes():
        assert loaded.successors(u) == paper_index.successors(u)
        assert loaded.predecessors(u) == paper_index.predecessors(u)
    # A loaded view is detached from any source index: never stale.
    paper_index.add_arc("g", "h")
    assert not loaded.is_stale()
    assert loaded.reachable("a", "h")


def test_load_any_dispatches(paper_index, tmp_path):
    mutable_path = tmp_path / "index.json"
    frozen_path = tmp_path / "frozen.json"
    save_index(paper_index, mutable_path)
    save_frozen_index(paper_index.freeze(), frozen_path)
    assert isinstance(open_index(mutable_path), IntervalTCIndex)
    assert isinstance(open_index(frozen_path), FrozenTCIndex)


def test_wrong_loader_raises(paper_index):
    frozen_doc = frozen_to_dict(paper_index.freeze())
    with pytest.raises(ReproError):
        index_from_dict(frozen_doc)
    mutable_doc = index_to_dict(paper_index)
    from repro.core.serialize import frozen_from_dict
    with pytest.raises(ReproError):
        frozen_from_dict(mutable_doc)


def test_fractional_round_trip(tmp_path):
    index = IntervalTCIndex.build(DiGraph([("a", "b"), ("b", "c")]),
                                  numbering="fractional", gap=4)
    index.add_node("d", parents=["a"])
    path = tmp_path / "frozen.json"
    save_frozen_index(index.freeze(), path)
    loaded = open_index(path, engine="frozen")
    for node in index.nodes():
        assert loaded.successors(node) == index.successors(node)


def test_inconsistent_buffers_rejected():
    with pytest.raises(ReproError):
        FrozenTCIndex.from_buffers(nodes=["a", "b"], numbers=[1, 2],
                                   offsets=[0, 1], lows=[0], highs=[0])
    with pytest.raises(ReproError):
        FrozenTCIndex.from_buffers(nodes=["a"], numbers=[1],
                                   offsets=[0, 2], lows=[0], highs=[0, 0, 0])


# ----------------------------------------------------------------------
# routing through repro.core.queries
# ----------------------------------------------------------------------
def test_queries_route_through_frozen_view(paper_index):
    nodes = list(paper_index.nodes())
    pairs = [(u, v) for u in nodes[:4] for v in nodes[:4]]
    before = {
        "batch": queries.path_exists_batch(paper_index, pairs),
        "reaching": queries.reaching_set(paper_index, ["h"]),
        "from_set": queries.reachable_from_set(paper_index, ["b", "c"]),
        "any": queries.any_reachable(paper_index, ["a"], ["h"]),
        "disjoint": queries.are_disjoint(paper_index, "d", "g"),
    }
    paper_index.freeze()
    assert queries.path_exists_batch(paper_index, pairs) == before["batch"]
    assert queries.reaching_set(paper_index, ["h"]) == before["reaching"]
    assert queries.reachable_from_set(paper_index, ["b", "c"]) == \
        before["from_set"]
    assert queries.any_reachable(paper_index, ["a"], ["h"]) == before["any"]
    assert queries.are_disjoint(paper_index, "d", "g") == before["disjoint"]


def test_queries_accept_frozen_directly(paper_index):
    frozen = paper_index.freeze()
    assert queries.descendants(frozen, "a") == \
        queries.descendants(paper_index, "a")
    assert queries.ancestors(frozen, "h") == \
        queries.ancestors(paper_index, "h")
    assert queries.common_ancestors(frozen, ["d", "e"]) == \
        queries.common_ancestors(paper_index, ["d", "e"])
    assert queries.least_common_ancestors(frozen, ["e", "f"]) == \
        queries.least_common_ancestors(paper_index, ["e", "f"])


def test_stats_and_nbytes(paper_index, backend):
    frozen = paper_index.freeze(backend=backend)
    report = frozen.stats()
    assert report["num_nodes"] == len(paper_index)
    assert report["backend"] == backend
    assert report["nbytes"] == frozen.nbytes > 0
    assert report["stale"] is False
    assert frozen.num_intervals <= paper_index.num_intervals
