"""The paper's worked narrative, replayed step by step.

Sections 3.1-4.1 walk one example through numbering, compression, gapped
insertion (Figure 4.1: "the addition of node x and the tree arc (b, x)
results in the postorder number 35 and the interval [31, 35]"), and a
non-tree arc whose intervals are fully subsumed (Figure 4.2).  This test
file reconstructs each beat of that story against our implementation.
"""

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.intervals import Interval
from repro.core.labeling import assign_postorder
from repro.core.tree_cover import build_tree_cover
from repro.graph.digraph import DiGraph


@pytest.fixture
def tree_abc():
    """A small rooted tree: r over two subtrees."""
    return DiGraph([
        ("r", "a"), ("r", "b"),
        ("a", "c"), ("a", "d"),
        ("b", "e"),
    ])


class TestSection31TreeNumbering:
    """Postorder numbers + lowest-descendant index, Figure 3.1."""

    def test_postorder_and_indices(self, tree_abc):
        cover = build_tree_cover(tree_abc)
        labeling = assign_postorder(cover, gap=1)
        # Postorder: c=1, d=2, a=3, e=4, b=5, r=6 (children in topo order).
        assert labeling.postorder == {"c": 1, "d": 2, "a": 3,
                                      "e": 4, "b": 5, "r": 6}
        # Index = lowest postorder among descendants (self for leaves).
        assert labeling.tree_interval["c"] == Interval(1, 1)
        assert labeling.tree_interval["a"] == Interval(1, 3)
        assert labeling.tree_interval["b"] == Interval(4, 5)
        assert labeling.tree_interval["r"] == Interval(1, 6)

    def test_lemma_1(self, tree_abc):
        """Path r ->* v iff index <= postorder(v) <= postorder(r)."""
        cover = build_tree_cover(tree_abc)
        labeling = assign_postorder(cover, gap=1)
        lo, hi = labeling.tree_interval["a"]
        reached = {node for node, number in labeling.postorder.items()
                   if lo <= number <= hi}
        assert reached == {"a", "c", "d"}

    def test_storage_is_twice_the_tree(self, tree_abc):
        """'O(n) storage, only a constant factor (twice) the storage for
        the tree itself.'"""
        index = IntervalTCIndex.build(tree_abc, gap=1)
        assert index.storage_units == 2 * tree_abc.num_nodes


class TestSection41GappedInsertion:
    """Figure 4.1: gap-10 numbering and midpoint insertion."""

    @pytest.fixture
    def gapped(self, tree_abc):
        return IntervalTCIndex.build(tree_abc, gap=10)

    def test_gap_10_numbers(self, gapped):
        # Same postorder shape as gap 1, scaled by 10.
        assert gapped.postorder["c"] == 10
        assert gapped.postorder["a"] == 30
        assert gapped.postorder["r"] == 60

    def test_leaf_reserves_gap_below(self, gapped):
        # Figure 4.1's b had interval [31, 40]-style reservation: the gap
        # below a leaf's own number belongs to its future descendants.
        assert gapped.tree_interval["e"] == Interval(31, 40)

    def test_insert_under_leaf_takes_midpoint(self, gapped):
        """Paper: 'the addition of node x and the tree arc (b, x) results
        in the postorder number 35 and the interval [31, 35]' — b is a
        leaf numbered 40 holding [31, 40]; our e plays that role."""
        gapped.add_node("x", parents=["e"])
        assert gapped.postorder["x"] == 35
        assert gapped.tree_interval["x"] == Interval(31, 35)
        gapped.verify()

    def test_no_other_label_changes(self, gapped):
        before_numbers = dict(gapped.postorder)
        before_intervals = {node: gapped.intervals[node].copy()
                            for node in gapped.nodes()}
        gapped.add_node("x", parents=["e"])
        for node, number in before_numbers.items():
            assert gapped.postorder[node] == number
        for node, intervals in before_intervals.items():
            assert gapped.intervals[node] == intervals

    def test_second_insert_under_other_leaf(self, gapped):
        """Paper: 'the addition of node y and the tree arc (c, y) results
        in the postorder number 45 and the interval [41, 45]' — the next
        free region over; our second insertion shows the same midpoint
        pattern in its leaf's reserved range [1, 10]."""
        gapped.add_node("y", parents=["c"])
        assert gapped.postorder["y"] == 5          # midpoint of [1, 9]
        assert gapped.tree_interval["y"] == Interval(1, 5)
        gapped.verify()


class TestSection41SubsumedNonTreeArc:
    """Figure 4.2: a non-tree arc whose intervals are all subsumed."""

    def test_no_new_intervals_at_covering_ancestors(self, tree_abc):
        index = IntervalTCIndex.build(tree_abc, gap=10)
        index.add_node("x", parents=["e"])
        snapshot = {node: index.intervals[node].copy()
                    for node in ("r", "b")}
        # x -> (new node z under e): x and z both sit under e; the arc
        # (x, z)'s intervals are subsumed at every ancestor of x.
        index.add_node("z", parents=["e"])
        index.add_arc("x", "z")
        for node in ("r", "b"):
            assert index.intervals[node] == snapshot[node], node
        index.verify()

    def test_refinement_is_locally_bounded(self, tree_abc):
        """Inserting z between {a, b} and an existing node only touches z."""
        index = IntervalTCIndex.build(tree_abc, gap=10)
        snapshot = {node: index.intervals[node].copy() for node in index.nodes()}
        index.add_node("z", parents=["a", "b"])
        index.add_arc("z", "e") if not index.reachable("z", "e") else None
        # a and b already reached e's region through their own intervals?
        # b does (e is b's child); a does not -- a legitimately gains e's
        # interval. r, which subsumes everything, must stay untouched.
        assert index.intervals["r"] == snapshot["r"]
        index.verify()
