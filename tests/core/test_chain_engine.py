"""ChainCoverIndex as a first-class engine, plus Dilworth properties.

The decomposition algorithms themselves are covered by
``tests/baselines/test_chain_cover.py`` (which now exercises the same
class through its historical ``ChainTCIndex`` name); this file covers
what the promotion added: the full TCEngine surface, serialization, the
width sandwich on seeded DAGs, and observability.
"""

import random

import pytest

from repro import open_index
from repro.core.chain_cover import (ChainCoverIndex,
                                    greedy_chain_decomposition,
                                    optimal_chain_decomposition)
from repro.core.index import IntervalTCIndex
from repro.core.serialize import (chain_from_dict, chain_to_dict,
                                  save_chain_index)
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.metrics import width_by_levels
from repro.obs import MetricsRegistry, attach


def paper_graph() -> DiGraph:
    graph = DiGraph()
    for source, destination in [("a", "b"), ("b", "c"), ("b", "d"),
                                ("a", "e"), ("e", "d"), ("c", "f")]:
        graph.add_arc(source, destination)
    return graph


class TestEngineSurface:
    @pytest.mark.parametrize("method", ("greedy", "optimal"))
    def test_seeded_dag_differential(self, method):
        graph = random_dag(250, 2.0, 11)
        oracle = IntervalTCIndex.build(graph)
        index = ChainCoverIndex.build(graph, method=method)
        rng = random.Random(11)
        nodes = sorted(graph.nodes(), key=repr)
        for node in rng.sample(nodes, 30):
            assert index.successors(node) == oracle.successors(node)
            assert index.predecessors(node) == oracle.predecessors(node)
            assert index.count_successors(node) == \
                oracle.count_successors(node)
        pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(200)]
        assert index.reachable_many(pairs) == oracle.reachable_many(pairs)

    def test_point_query_is_one_probe_per_chain(self):
        # The fast path: reachable() consults only the source's
        # per-chain minimum vector, never walks the graph.
        index = ChainCoverIndex.build(paper_graph())
        assert index.reachable("a", "f")
        assert not index.reachable("f", "a")
        assert index.are_disjoint("f", "d")
        assert not index.are_disjoint("b", "e")

    def test_unknown_nodes_raise(self):
        index = ChainCoverIndex.build(paper_graph())
        with pytest.raises(NodeNotFoundError):
            index.reachable("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            index.reaching_set(["ghost"])


class TestWidthSandwich:
    """Dilworth: max antichain == optimal chain count.

    The level histogram gives a real antichain, so its maximum is a
    lower bound; the greedy first-fit count is an upper bound.  The
    optimal (bipartite-matching) count must sit between the two on
    every seeded DAG — the property behind Jagadish's Theorem 2
    storage comparison.
    """

    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_between_level_width_and_greedy(self, seed):
        graph = random_dag(60, 1.0 + (seed % 4) * 0.7, seed)
        optimal = len(optimal_chain_decomposition(graph))
        greedy = len(greedy_chain_decomposition(graph))
        assert width_by_levels(graph) <= optimal <= greedy <= \
            graph.num_nodes

    @pytest.mark.parametrize("seed", range(4))
    def test_chains_partition_the_nodes(self, seed):
        graph = random_dag(80, 2.0, seed)
        index = ChainCoverIndex.build(graph, method="optimal")
        covered = [node for chain in index.chains for node in chain]
        assert len(covered) == graph.num_nodes
        assert set(covered) == set(graph.nodes())


class TestSerialization:
    @pytest.mark.parametrize("method", ("greedy", "optimal"))
    def test_dict_round_trip(self, method):
        index = ChainCoverIndex.build(paper_graph(), method=method)
        clone = chain_from_dict(chain_to_dict(index))
        assert clone.stats()["method"] == method
        for node in index.nodes():
            assert clone.successors(node) == index.successors(node)
            assert clone.predecessors(node) == index.predecessors(node)

    def test_file_round_trip_via_open_index(self, tmp_path):
        path = tmp_path / "chain.json"
        save_chain_index(ChainCoverIndex.build(paper_graph()), path)
        loaded = open_index(path)
        assert isinstance(loaded, ChainCoverIndex)
        assert loaded.reachable("a", "f")
        assert loaded.num_chains == loaded.stats()["num_chains"]


class TestObservability:
    def test_gauges_register_through_attach(self):
        registry = MetricsRegistry()
        index = attach(ChainCoverIndex.build(paper_graph()),
                       metrics=registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges['tc_nodes{engine="ChainCoverIndex"}'] == len(index)
        assert gauges['tc_chain_count{engine="ChainCoverIndex"}'] == \
            index.num_chains


class TestBaselineAlias:
    def test_historical_name_is_the_engine(self):
        from repro.baselines.chain_cover import ChainTCIndex
        assert ChainTCIndex is ChainCoverIndex
