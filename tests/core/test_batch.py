"""Tests for batched maintenance (one recompute per deletion run)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import (
    apply_diff,
    apply_operations,
    operations_from_pairs,
    parse_diff,
)
from repro.core.index import IntervalTCIndex
from repro.errors import GraphError, IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


def build(graph, **kwargs):
    kwargs.setdefault("gap", 16)
    return IntervalTCIndex.build(graph, **kwargs)


class TestApplyOperations:
    def test_mixed_batch_is_exact(self, paper_dag):
        index = build(paper_dag)
        apply_operations(index, [
            ("remove-arc", "a", "c"),
            ("remove-arc", "e", "h"),
            ("add-node", "x", ["b"]),
            ("remove-node", "f"),
            ("add-arc", "d", "g"),
        ])
        index.check_invariants()
        index.verify()

    def test_deletion_run_pays_one_pass(self, paper_dag):
        index = build(paper_dag)
        arcs_to_drop = [("a", "c"), ("b", "d"), ("e", "h"), ("c", "g")]
        passes = apply_operations(
            index, operations_from_pairs(remove=arcs_to_drop))
        assert passes == 1
        index.verify()

    def test_interleaved_adds_force_flushes(self, paper_dag):
        index = build(paper_dag)
        passes = apply_operations(index, [
            ("remove-arc", "a", "c"),
            ("add-arc", "d", "g"),       # reads intervals -> flush
            ("remove-arc", "e", "h"),
            ("add-arc", "f", "g"),       # flush again
        ])
        assert passes == 2
        index.verify()

    def test_batch_equals_sequential(self):
        graph = random_dag(40, 2, 5)
        batched = build(graph)
        sequential = build(graph.copy())
        operations = [("remove-arc", *arc) for arc in list(graph.arcs())[:8]]
        operations.append(("add-node", "z", [0]))
        apply_operations(batched, operations)
        for kind, *payload in operations:
            if kind == "remove-arc":
                sequential.remove_arc(*payload)
            else:
                sequential.add_node(payload[0], payload[1])
        for node in batched.nodes():
            assert batched.successors(node) == sequential.successors(node)

    def test_unknown_operation(self, diamond):
        with pytest.raises(IndexStateError):
            apply_operations(build(diamond), [("teleport", "a")])

    def test_empty_batch(self, diamond):
        assert apply_operations(build(diamond), []) == 0


class TestParseDiff:
    def test_basic_lines(self):
        operations = parse_diff("""
        # a comment
        + a b
        - c d
        + lonely
        - gone
        """)
        assert operations == [("+arc", "a", "b"), ("remove-arc", "c", "d"),
                              ("add-node", "lonely", []), ("remove-node", "gone")]

    def test_malformed_lines(self):
        with pytest.raises(GraphError):
            parse_diff("~ a b")
        with pytest.raises(GraphError):
            parse_diff("+ a b c")
        with pytest.raises(GraphError):
            parse_diff("+")


class TestApplyDiff:
    def test_new_destination_becomes_tree_insert(self, paper_dag):
        index = build(paper_dag)
        apply_diff(index, "+ b shiny\n")
        assert index.reachable("a", "shiny")
        index.verify()

    def test_new_source(self, paper_dag):
        index = build(paper_dag)
        apply_diff(index, "+ upstream a\n")
        assert index.reachable("upstream", "h")
        index.verify()

    def test_both_new(self, paper_dag):
        index = build(paper_dag)
        apply_diff(index, "+ p q\n")
        assert index.reachable("p", "q")
        index.verify()

    def test_full_scenario(self, paper_dag):
        index = build(paper_dag)
        passes = apply_diff(index, """
        - a c          # drop a subtree link
        - e h
        + d h          # new shortcut
        + c new-leaf   # fresh node under c
        - f            # retire f entirely
        """)
        assert passes >= 1
        assert index.reachable("c", "new-leaf")
        assert "f" not in index
        index.check_invariants()
        index.verify()


@settings(max_examples=25)
@given(st.integers(0, 5000), st.integers(0, 12), st.integers(0, 8))
def test_random_batches_stay_exact(seed, removals, additions):
    rng = random.Random(seed)
    graph = random_dag(25, 2, seed)
    index = build(graph)
    operations = []
    arcs = list(graph.arcs())
    rng.shuffle(arcs)
    operations.extend(("remove-arc", s, d) for s, d in arcs[:removals])
    for counter in range(additions):
        operations.append(("add-node", ("n", counter),
                           [rng.randrange(25)]))
    apply_operations(index, operations)
    index.check_invariants()
    for node in index.nodes():
        assert index.successors(node) == reachable_from(index.graph, node)
