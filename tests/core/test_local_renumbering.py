"""Tests for the Section 4.1 local renumbering (shift to the first hole)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.core.updates import free_ranges_under, make_room
from repro.errors import IndexStateError, NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import reachable_from


class TestMakeRoom:
    def test_opens_exactly_one_slot_under_leaf(self):
        index = IntervalTCIndex.build(DiGraph([("a", "b")]), gap=1)
        assert free_ranges_under(index, "b") == []
        index.make_room("b")
        ranges = free_ranges_under(index, "b")
        assert sum(hi - lo + 1 for lo, hi in ranges) == 1
        index.check_invariants()
        index.verify()

    def test_preserves_all_answers(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag, gap=1)
        answers = {node: index.successors(node) for node in index.nodes()}
        for node in list(index.nodes()):
            index.make_room(node)
            index.check_invariants()
            assert {n: index.successors(n) for n in index.nodes()} == answers

    def test_does_not_change_stride(self, diamond):
        index = IntervalTCIndex.build(diamond, gap=1)
        index.make_room("d")
        assert index.gap == 1

    def test_unknown_parent(self, diamond):
        index = IntervalTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            index.make_room("ghost")

    def test_shift_is_local(self):
        """Numbers above the first hole never move."""
        index = IntervalTCIndex.build(DiGraph([(0, 1), (0, 2), (0, 3)]), gap=4)
        untouched = {node: number for node, number in index.postorder.items()
                     if number > index.postorder[1] + 4}
        index.make_room(1)
        for node, number in untouched.items():
            assert index.postorder[node] == number


class TestLocalStrategy:
    def test_invalid_strategy_rejected(self, diamond):
        with pytest.raises(IndexStateError):
            IntervalTCIndex.build(diamond, renumber_strategy="sideways")

    def test_dense_insert_stream(self):
        graph = random_dag(25, 2, 3)
        index = IntervalTCIndex.build(graph, gap=1, renumber_strategy="local")
        leaf = next(node for node in graph if graph.out_degree(node) == 0)
        parent = leaf
        for step in range(12):
            index.add_node(("deep", step), parents=[parent])
            parent = ("deep", step)
        for step in range(8):
            index.add_node(("wide", step), parents=[leaf])
        assert index.gap == 1          # local shifts never widen the stride
        index.check_invariants()
        index.verify()

    def test_local_and_global_agree_semantically(self):
        graph = random_dag(20, 1.5, 9)
        local = IntervalTCIndex.build(graph, gap=1, renumber_strategy="local")
        global_ = IntervalTCIndex.build(graph.copy(), gap=1,
                                        renumber_strategy="global")
        for step in range(10):
            local.add_node(("n", step), parents=[step % 20])
            global_.add_node(("n", step), parents=[step % 20])
        for node in local.nodes():
            assert local.successors(node) == global_.successors(node)


@settings(max_examples=30)
@given(st.integers(2, 25), st.floats(0.5, 2.0), st.integers(0, 5000),
       st.integers(0, 24))
def test_make_room_property(n, degree, seed, node_pick):
    graph = random_dag(n, min(degree, (n - 1) / 2), seed)
    index = IntervalTCIndex.build(graph, gap=1)
    victim = sorted(graph.nodes())[node_pick % n]
    expected = {node: reachable_from(graph, node) for node in graph}
    make_room(index, victim)
    index.check_invariants()
    for node in graph:
        assert index.successors(node) == expected[node]
    # The opened slot really is claimable.
    index.add_node("fresh", parents=[victim])
    assert index.reachable(victim, "fresh")
    index.verify()
