"""TCEngine conformance: every engine shares one query surface.

Parametrized over the mutable, frozen, hybrid, durable, RTCF, 2-hop
label and chain-cover engines:
method presence (``isinstance`` against the runtime-checkable protocol),
exact signature equality via :func:`inspect.signature`, shared reflexive
semantics, empty-graph edge cases, batch-equals-singles, and the
observability contract (counters increment, histograms record, a
disabled registry stays empty).
"""

import inspect

import pytest

from repro.core.engine import TCEngine
from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.durability.store import DurableTCIndex
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry, QueryTracer, attach

ENGINE_NAMES = ("interval", "frozen", "hybrid", "durable", "rtcf",
                "hoplabel", "chain")

#: The query surface whose signatures must match byte-for-byte.
QUERY_METHODS = (
    "reachable",
    "successors",
    "predecessors",
    "iter_successors",
    "count_successors",
    "reachable_many",
    "successors_many",
    "predecessors_many",
    "reachable_from_set",
    "reaching_set",
    "any_reachable",
    "are_disjoint",
    "nodes",
    "__contains__",
    "__len__",
)


def paper_graph() -> DiGraph:
    graph = DiGraph()
    for source, destination in [("a", "b"), ("b", "c"), ("b", "d"),
                                ("a", "e"), ("e", "d"), ("c", "f")]:
        graph.add_arc(source, destination)
    return graph


def make_engine(name, graph, tmp_path, *, metrics=None, tracer=None):
    if name == "interval":
        index = IntervalTCIndex.build(graph)
        return attach(index, metrics=metrics, tracer=tracer)
    if name == "frozen":
        frozen = IntervalTCIndex.build(graph).freeze().detach()
        return attach(frozen, metrics=metrics, tracer=tracer)
    if name == "hybrid":
        hybrid = HybridTCIndex.build(graph)
        return attach(hybrid, metrics=metrics, tracer=tracer)
    if name == "durable":
        from repro.graph.traversal import topological_order
        store = DurableTCIndex.open(tmp_path / "store", metrics=metrics,
                                    tracer=tracer)
        for node in topological_order(graph):
            store.add_node(node, sorted(graph.predecessors(node), key=repr))
        return store
    if name == "rtcf":
        from repro.core.rtcf import load_rtcf, save_rtcf
        path = str(tmp_path / "engine.rtcf")
        save_rtcf(IntervalTCIndex.build(graph).freeze(), path)
        return attach(load_rtcf(path, verify=True), metrics=metrics,
                      tracer=tracer)
    if name == "hoplabel":
        from repro.core.hoplabel import HopLabelIndex
        return attach(HopLabelIndex.build(graph), metrics=metrics,
                      tracer=tracer)
    if name == "chain":
        from repro.core.chain_cover import ChainCoverIndex
        return attach(ChainCoverIndex.build(graph), metrics=metrics,
                      tracer=tracer)
    raise AssertionError(name)


@pytest.fixture(params=ENGINE_NAMES)
def engine(request, tmp_path):
    built = make_engine(request.param, paper_graph(), tmp_path)
    yield built
    if hasattr(built, "close"):
        built.close()


class TestProtocol:
    def test_isinstance(self, engine):
        assert isinstance(engine, TCEngine)

    @pytest.mark.parametrize("method", QUERY_METHODS)
    def test_signatures_match_the_mutable_index(self, engine, method):
        reference = inspect.signature(getattr(IntervalTCIndex, method))
        actual = inspect.signature(getattr(type(engine), method))
        assert actual == reference, (
            f"{type(engine).__name__}.{method} signature drifted: "
            f"{actual} != {reference}")

    def test_stats_takes_no_arguments(self, engine):
        parameters = inspect.signature(type(engine).stats).parameters
        assert list(parameters) == ["self"]

    def test_capabilities_contract(self, engine):
        from repro.core.engine import EngineCapabilities
        caps = engine.capabilities()
        assert isinstance(caps, EngineCapabilities)
        assert caps.kind
        # A compiled snapshot cannot also accept updates.
        assert not (caps.is_frozen_snapshot and caps.supports_updates)


def test_registry_covers_every_engine_name():
    """`open_index` names, the builder registry, and this suite agree.

    Registering an engine in ``GRAPH_ENGINE_BUILDERS`` is what enlists
    it here; a name in ``ENGINES`` without a builder (or vice versa) is
    a wiring bug.
    """
    from repro.factory import ENGINES, GRAPH_ENGINE_BUILDERS
    buildable = set(ENGINES) - {"auto", "dict"}
    assert set(GRAPH_ENGINE_BUILDERS) == buildable
    # The conformance battery exercises every buildable engine: the
    # ENGINE_NAMES here add serving wrappers (durable, rtcf) on top.
    assert buildable <= set(ENGINE_NAMES) | {"interval"}


class TestSemantics:
    def test_reflexive_by_default(self, engine):
        assert engine.reachable("a", "a")
        assert "a" in engine.successors("a")
        assert "a" not in engine.successors("a", reflexive=False)
        assert "d" not in engine.predecessors("d", reflexive=False)

    def test_point_queries(self, engine):
        assert engine.reachable("a", "f")
        assert not engine.reachable("f", "a")
        assert engine.successors("b", reflexive=False) == {"c", "d", "f"}
        assert engine.predecessors("d", reflexive=False) == {"a", "b", "e"}
        assert engine.count_successors("a") == len(engine.successors("a"))
        assert (sorted(engine.iter_successors("b"), key=str)
                == sorted(engine.successors("b"), key=str))

    def test_batch_equals_singles(self, engine):
        nodes = sorted(engine.nodes(), key=str)
        pairs = [(s, d) for s in nodes for d in nodes]
        assert engine.reachable_many(pairs) == [
            engine.reachable(s, d) for s, d in pairs]
        assert engine.successors_many(nodes) == [
            engine.successors(n) for n in nodes]
        assert engine.predecessors_many(nodes, reflexive=False) == [
            engine.predecessors(n, reflexive=False) for n in nodes]

    def test_set_semijoins(self, engine):
        assert engine.reachable_from_set(["b", "e"]) == (
            engine.successors("b") | engine.successors("e"))
        assert engine.reaching_set(["f"]) == engine.predecessors("f")
        assert engine.any_reachable(["e"], ["f", "d"])
        assert not engine.any_reachable(["f"], ["a", "b"])
        assert engine.are_disjoint("f", "d")
        assert not engine.are_disjoint("b", "e")  # share d

    def test_membership(self, engine):
        assert "a" in engine and "ghost" not in engine
        assert len(engine) == 6
        assert set(engine.nodes()) == {"a", "b", "c", "d", "e", "f"}

    def test_stats_reports(self, engine):
        stats = engine.stats()
        payload = stats.as_dict() if hasattr(stats, "as_dict") else stats
        assert isinstance(payload, dict) and payload


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestEmptyGraph:
    def test_empty_engine(self, name, tmp_path):
        engine = make_engine(name, DiGraph(), tmp_path)
        try:
            assert len(engine) == 0
            assert list(engine.nodes()) == []
            assert "ghost" not in engine
            assert engine.reachable_many([]) == []
            assert engine.reachable_from_set([]) == set()
            assert engine.reaching_set([]) == set()
            assert not engine.any_reachable([], [])
        finally:
            if hasattr(engine, "close"):
                engine.close()


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestObservability:
    def test_metrics_record(self, name, tmp_path):
        registry = MetricsRegistry()
        engine = make_engine(name, paper_graph(), tmp_path,
                             metrics=registry)
        try:
            engine.reachable("a", "f")
            engine.successors("a")
            engine.reachable_many([("a", "f"), ("f", "a")])
        finally:
            if hasattr(engine, "close"):
                engine.close()
        snapshot = registry.snapshot()
        label = type(engine).__name__
        counter = f'tc_op_total{{engine="{label}",op="reachable"}}'
        assert snapshot["counters"][counter] >= 1
        histogram = (f'tc_op_latency_seconds{{engine="{label}",'
                     f'op="reachable"}}')
        digest = snapshot["histograms"][histogram]
        assert digest["count"] >= 1 and digest["sum"] > 0

    def test_disabled_registry_records_nothing(self, name, tmp_path):
        registry = MetricsRegistry(enabled=False)
        engine = make_engine(name, paper_graph(), tmp_path,
                             metrics=registry)
        try:
            engine.reachable("a", "f")
        finally:
            if hasattr(engine, "close"):
                engine.close()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        # the truly-zero-overhead path: no instruments were attached
        inner = engine.engine if hasattr(engine, "engine") else engine
        assert inner._obs is None

    def test_tracer_records_spans(self, name, tmp_path):
        tracer = QueryTracer()
        engine = make_engine(name, paper_graph(), tmp_path, tracer=tracer)
        try:
            engine.reachable("a", "f")
        finally:
            if hasattr(engine, "close"):
                engine.close()
        assert len(tracer) >= 1
        root = tracer.traces(last=1)[0]
        assert root.name == "reachable"
        assert root.annotations["engine"] == type(engine).__name__


def test_health_gauges_present():
    registry = MetricsRegistry()
    index = attach(IntervalTCIndex.build(paper_graph()), metrics=registry)
    gauges = registry.snapshot()["gauges"]
    for name in ("tc_nodes", "tc_intervals_total", "tc_intervals_per_node",
                 "tc_gap_budget_remaining", "tc_renumber_total"):
        key = f'{name}{{engine="IntervalTCIndex"}}'
        assert key in gauges, key
    assert gauges['tc_nodes{engine="IntervalTCIndex"}'] == len(index)
    assert gauges['tc_gap_budget_remaining{engine="IntervalTCIndex"}'] >= 0


def test_gauges_survive_engine_collection():
    registry = MetricsRegistry()
    attach(IntervalTCIndex.build(paper_graph()), metrics=registry)
    import gc
    gc.collect()
    gauges = registry.snapshot()["gauges"]
    assert gauges['tc_nodes{engine="IntervalTCIndex"}'] == 0.0


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestEmptyBatchOnPopulatedGraph:
    """reachable_many([]) must be [] on a *populated* engine too.

    The empty-graph case above cannot catch an engine whose batch path
    trips over its own fast-path setup (numpy array staging, snapshot
    pinning) when the graph is non-trivial but the batch is empty.
    """

    def test_empty_batches(self, name, tmp_path):
        engine = make_engine(name, paper_graph(), tmp_path)
        try:
            assert engine.reachable_many([]) == []
            assert engine.successors_many([]) == []
            assert engine.predecessors_many([]) == []
            assert engine.reachable_many(iter([])) == []
        finally:
            if hasattr(engine, "close"):
                engine.close()


#: The durable store builds incrementally (one journalled add_node per
#: node), which is far too slow at 5k nodes for tier-1; the other
#: engines all build from a graph in one pass.
SCALE_ENGINE_NAMES = ("interval", "frozen", "hybrid", "rtcf", "hoplabel",
                      "chain")


@pytest.mark.parametrize("name", SCALE_ENGINE_NAMES)
class TestBatchEqualsSinglesAtScale:
    """A seeded 5k-node DAG: the vectorised batch path vs one-at-a-time.

    The paper-graph parity check above runs 36 pairs — far too few to
    exercise the numpy staging, chunking, and rank-slice paths that only
    engage on wide batches.  Seeded, so a failure replays exactly.
    """

    def test_seeded_5k_node_batch_parity(self, name, tmp_path):
        import random

        from repro.graph.generators import random_dag

        graph = random_dag(5000, 1.5, 1989)
        engine = make_engine(name, graph, tmp_path)
        try:
            rng = random.Random(7)
            nodes = sorted(graph.nodes(), key=repr)
            pairs = [(rng.choice(nodes), rng.choice(nodes))
                     for _ in range(2000)]
            batched = engine.reachable_many(pairs)
            assert len(batched) == len(pairs)
            assert [bool(answer) for answer in batched] == [
                engine.reachable(source, destination)
                for source, destination in pairs]
            assert any(batched), "sample drew no reachable pair"
            assert not all(batched), "sample drew only reachable pairs"
        finally:
            if hasattr(engine, "close"):
                engine.close()
