"""Tests for JSON serialisation of built indexes."""

import json

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.serialize import (
    index_from_dict,
    index_to_dict,
    save_index,
)
from repro.factory import open_index
from repro.errors import ReproError
from repro.graph.generators import random_dag


def assert_equivalent(first, second):
    assert set(first.nodes()) == set(second.nodes())
    for node in first.nodes():
        assert first.successors(node) == second.successors(node)
    assert first.num_intervals == second.num_intervals
    assert first.gap == second.gap
    assert first.policy == second.policy


class TestRoundTrip:
    def test_dict_round_trip(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        again = index_from_dict(index_to_dict(index))
        assert_equivalent(index, again)
        again.check_invariants()
        again.verify()

    def test_json_serialisable(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        document = json.loads(json.dumps(index_to_dict(index)))
        assert_equivalent(index, index_from_dict(document))

    def test_file_round_trip(self, tmp_path, paper_dag):
        index = IntervalTCIndex.build(paper_dag, gap=4, merge=True)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = open_index(path, engine="interval")
        assert_equivalent(index, loaded)
        assert loaded.merged is True

    def test_random_graph_round_trip(self):
        graph = random_dag(60, 2.5, 17)
        index = IntervalTCIndex.build(graph, gap=1)
        again = index_from_dict(index_to_dict(index))
        assert_equivalent(index, again)
        again.verify()

    def test_loaded_index_is_updatable(self, tmp_path, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = open_index(path, engine="interval")
        loaded.add_node("post-load", parents=["b"])
        loaded.remove_arc("a", "c")
        loaded.check_invariants()
        loaded.verify()

    def test_empty_index_round_trip(self):
        from repro.graph.digraph import DiGraph
        index = IntervalTCIndex.build(DiGraph())
        assert_equivalent(index, index_from_dict(index_to_dict(index)))


class TestVersioning:
    def test_unknown_version_rejected(self, paper_dag):
        document = index_to_dict(IntervalTCIndex.build(paper_dag))
        document["format_version"] = 99
        with pytest.raises(ReproError):
            index_from_dict(document)

    def test_missing_version_rejected(self, paper_dag):
        document = index_to_dict(IntervalTCIndex.build(paper_dag))
        del document["format_version"]
        with pytest.raises(ReproError):
            index_from_dict(document)
