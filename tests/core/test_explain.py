"""Tests for the explain/debug renderers."""

import pytest

from repro.core.explain import (
    describe,
    explain_reachability,
    heaviest_nodes,
    interval_histogram,
    non_tree_arcs,
    render_tree,
)
from repro.core.index import IntervalTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import bipartite_worst_case, random_dag


class TestRenderTree:
    def test_contains_every_node(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        rendered = render_tree(index)
        for node in paper_dag:
            assert repr(node) in rendered

    def test_indentation_tracks_depth(self, chain5):
        index = IntervalTCIndex.build(chain5)
        lines = render_tree(index).splitlines()
        indents = [len(line) - len(line.lstrip()) for line in lines]
        assert indents == [0, 4, 8, 12, 16]

    def test_empty_index(self):
        index = IntervalTCIndex.build(DiGraph())
        assert render_tree(index) == "(empty index)"


class TestNonTreeArcs:
    def test_diamond_has_one(self, diamond):
        index = IntervalTCIndex.build(diamond)
        extra = non_tree_arcs(index)
        assert len(extra) == 1
        assert extra[0][1] == "d"

    def test_tree_has_none(self, chain5):
        index = IntervalTCIndex.build(chain5)
        assert non_tree_arcs(index) == []

    def test_count_matches_arcs_minus_tree(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        tree_arc_count = sum(1 for _ in index.cover.tree_arcs())
        assert len(non_tree_arcs(index)) == paper_dag.num_arcs - tree_arc_count


class TestExplainReachability:
    def test_positive_tree_path(self, chain5):
        index = IntervalTCIndex.build(chain5)
        text = explain_reachability(index, 0, 4)
        assert "reaches" in text and "tree interval" in text

    def test_positive_non_tree_path(self, diamond):
        index = IntervalTCIndex.build(diamond)
        non_tree_parent = next(source for source, _ in non_tree_arcs(index))
        text = explain_reachability(index, non_tree_parent, "d")
        assert "non-tree interval" in text

    def test_negative(self, diamond):
        index = IntervalTCIndex.build(diamond)
        text = explain_reachability(index, "d", "a")
        assert "does NOT reach" in text

    def test_unknown_nodes(self, diamond):
        index = IntervalTCIndex.build(diamond)
        with pytest.raises(NodeNotFoundError):
            explain_reachability(index, "ghost", "a")
        with pytest.raises(NodeNotFoundError):
            explain_reachability(index, "a", "ghost")


class TestHistogramsAndHotspots:
    def test_histogram_sums_to_node_count(self):
        graph = random_dag(50, 2, 3)
        index = IntervalTCIndex.build(graph)
        histogram = interval_histogram(index)
        assert sum(histogram.values()) == 50

    def test_tree_histogram_is_single_bucket(self, chain5):
        index = IntervalTCIndex.build(chain5)
        assert interval_histogram(index) == {1: 5}

    def test_heaviest_nodes_are_sources_in_worst_case(self):
        index = IntervalTCIndex.build(bipartite_worst_case(5, 6))
        heavy = heaviest_nodes(index, limit=5)
        assert all(node[0] == "s" for node, _ in heavy)
        counts = [count for _, count in heavy]
        assert counts == sorted(counts, reverse=True)

    def test_limit_respected(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        assert len(heaviest_nodes(index, limit=3)) == 3


class TestDescribe:
    def test_sections_present(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        text = describe(index)
        assert "IntervalTCIndex over" in text
        assert "intervals:" in text
        assert "tree cover:" in text
        assert "heaviest nodes:" in text

    def test_tree_section_optional(self, paper_dag):
        index = IntervalTCIndex.build(paper_dag)
        assert "tree cover:" not in describe(index, tree=False)
