"""graph_stats / recommend_engine: the ``engine="auto"`` decision rule."""

import dataclasses

import pytest

from repro import DiGraph, graph_stats, open_index, recommend_engine
from repro.core.chain_cover import ChainCoverIndex
from repro.core.index import IntervalTCIndex
from repro.core.select import THRESHOLDS, GraphStats


def path_graph(length: int) -> DiGraph:
    return DiGraph([(f"n{i}", f"n{i+1}") for i in range(length)])


def bipartite(width: int) -> DiGraph:
    return DiGraph([(f"s{i}", f"t{j}") for i in range(width)
                    for j in range(width)])


class TestGraphStats:
    def test_costs_are_linear_inputs_only(self):
        stats = graph_stats(path_graph(10))
        assert stats.num_nodes == 11
        assert stats.num_arcs == 10
        assert stats.depth == 10
        assert stats.depth_ratio == pytest.approx(10 / 11)
        assert stats.chain_width_estimate == 1

    def test_bipartite_shape(self):
        stats = graph_stats(bipartite(8))
        assert stats.depth == 1
        assert stats.avg_out_degree == pytest.approx(4.0)
        assert stats.chain_width_estimate == 8

    def test_empty_graph(self):
        stats = graph_stats(DiGraph())
        assert stats.num_nodes == 0
        assert stats.depth == 0
        assert recommend_engine(stats) == "interval"

    def test_as_dict_round_trips_fields(self):
        stats = graph_stats(path_graph(4))
        payload = stats.as_dict()
        assert payload == {field.name: getattr(stats, field.name)
                           for field in dataclasses.fields(GraphStats)}


class TestRecommendation:
    def test_small_graphs_always_interval(self):
        assert recommend_engine(graph_stats(path_graph(10))) == "interval"
        assert recommend_engine(graph_stats(bipartite(10))) == "interval"

    def test_deep_chain_selects_chain(self):
        stats = graph_stats(path_graph(THRESHOLDS["small_nodes"] * 2))
        assert stats.depth_ratio >= THRESHOLDS["deep_depth_ratio"]
        assert recommend_engine(stats) == "chain"

    def test_large_bipartite_selects_chain(self):
        # The measured Figure 3.6 cell: chain posts the lowest
        # build+query total, so auto picks it over frozen here too.
        stats = graph_stats(bipartite(160))
        assert recommend_engine(stats) == "chain"

    def test_threshold_table_is_complete(self):
        assert set(THRESHOLDS) == {"small_nodes", "deep_depth_ratio"}


class TestAutoAgreement:
    """open_index(engine='auto') builds exactly what recommend_engine says."""

    @pytest.mark.parametrize("maker,expected", [
        (lambda: path_graph(10), IntervalTCIndex),
        (lambda: path_graph(600), ChainCoverIndex),
        (lambda: bipartite(160), ChainCoverIndex),
    ])
    def test_auto_matches_recommendation(self, maker, expected):
        graph = maker()
        recommended = recommend_engine(graph_stats(graph))
        built = open_index(graph)
        assert isinstance(built, expected)
        assert built.capabilities().kind == recommended
