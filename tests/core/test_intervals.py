"""Unit tests for the interval algebra."""

import pytest

from repro.core.intervals import (
    Interval,
    IntervalSet,
    intervals_from_points,
    make_interval,
)
from repro.errors import ReproError


class TestInterval:
    def test_contains(self):
        interval = Interval(3, 7)
        assert 3 in interval and 7 in interval and 5 in interval
        assert 2 not in interval and 8 not in interval
        assert "5" not in interval  # non-int membership is False, not an error

    def test_subsumes(self):
        assert Interval(1, 10).subsumes(Interval(3, 7))
        assert Interval(1, 10).subsumes(Interval(1, 10))
        assert not Interval(3, 7).subsumes(Interval(1, 10))
        assert not Interval(1, 5).subsumes(Interval(3, 7))

    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert Interval(1, 5).overlaps(Interval(3, 4))
        assert not Interval(1, 5).overlaps(Interval(6, 9))

    def test_adjacent(self):
        assert Interval(1, 5).adjacent_to(Interval(6, 9))
        assert Interval(6, 9).adjacent_to(Interval(1, 5))
        assert not Interval(1, 5).adjacent_to(Interval(7, 9))

    def test_merge(self):
        assert Interval(1, 5).merge(Interval(6, 9)) == Interval(1, 9)
        assert Interval(1, 5).merge(Interval(3, 9)) == Interval(1, 9)
        with pytest.raises(ReproError):
            Interval(1, 5).merge(Interval(7, 9))

    def test_width(self):
        assert Interval(4, 4).width == 1
        assert Interval(1, 10).width == 10

    def test_make_interval_validation(self):
        assert make_interval(2, 2) == Interval(2, 2)
        with pytest.raises(ReproError):
            make_interval(5, 4)


class TestIntervalSetAdd:
    def test_add_to_empty(self):
        interval_set = IntervalSet()
        assert interval_set.add(Interval(3, 7))
        assert list(interval_set) == [Interval(3, 7)]

    def test_subsumed_incoming_rejected(self):
        interval_set = IntervalSet([Interval(1, 10)])
        assert not interval_set.add(Interval(3, 7))
        assert len(interval_set) == 1

    def test_equal_interval_rejected(self):
        interval_set = IntervalSet([Interval(3, 7)])
        assert not interval_set.add(Interval(3, 7))
        assert len(interval_set) == 1

    def test_incoming_subsumes_existing(self):
        interval_set = IntervalSet([Interval(3, 7), Interval(20, 25)])
        assert interval_set.add(Interval(1, 10))
        assert list(interval_set) == [Interval(1, 10), Interval(20, 25)]

    def test_incoming_subsumes_run_of_existing(self):
        interval_set = IntervalSet([Interval(2, 3), Interval(5, 6), Interval(8, 9)])
        assert interval_set.add(Interval(1, 10))
        assert list(interval_set) == [Interval(1, 10)]

    def test_same_lo_longer_wins(self):
        interval_set = IntervalSet([Interval(3, 7)])
        assert interval_set.add(Interval(3, 9))
        assert list(interval_set) == [Interval(3, 9)]

    def test_same_lo_shorter_rejected(self):
        interval_set = IntervalSet([Interval(3, 9)])
        assert not interval_set.add(Interval(3, 7))

    def test_overlapping_non_subsuming_coexist(self):
        interval_set = IntervalSet([Interval(1, 5)])
        assert interval_set.add(Interval(3, 8))
        assert list(interval_set) == [Interval(1, 5), Interval(3, 8)]
        interval_set.check_invariants()

    def test_invalid_interval_raises(self):
        with pytest.raises(ReproError):
            IntervalSet().add(Interval(5, 3))

    def test_add_all_reports_change(self):
        interval_set = IntervalSet([Interval(1, 10)])
        assert not interval_set.add_all([Interval(2, 3), Interval(4, 5)])
        assert interval_set.add_all([Interval(2, 3), Interval(11, 12)])


class TestIntervalSetQueries:
    def test_covers(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(7, 9)])
        assert interval_set.covers(1) and interval_set.covers(3)
        assert interval_set.covers(8)
        assert not interval_set.covers(5)
        assert not interval_set.covers(0)
        assert not interval_set.covers(10)

    def test_covers_with_overlap(self):
        interval_set = IntervalSet([Interval(1, 5), Interval(3, 8)])
        for point in range(1, 9):
            assert interval_set.covers(point)
        assert not interval_set.covers(9)

    def test_covering_interval(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(7, 9)])
        assert interval_set.covering_interval(8) == Interval(7, 9)
        assert interval_set.covering_interval(5) is None

    def test_bounds(self):
        assert IntervalSet().covered_range_bounds() is None
        interval_set = IntervalSet([Interval(4, 6), Interval(1, 2)])
        assert interval_set.covered_range_bounds() == (1, 6)

    def test_len_bool_eq(self):
        empty = IntervalSet()
        assert not empty and len(empty) == 0
        one = IntervalSet([Interval(1, 2)])
        assert one and len(one) == 1
        assert one == IntervalSet([Interval(1, 2)])
        assert one != empty
        assert one != "something else"

    def test_storage_units(self):
        interval_set = IntervalSet([Interval(1, 2), Interval(4, 5)])
        assert interval_set.storage_units == 4

    def test_copy_is_independent(self):
        original = IntervalSet([Interval(1, 2)])
        clone = original.copy()
        clone.add(Interval(10, 11))
        assert len(original) == 1 and len(clone) == 2

    def test_total_covered_span(self):
        interval_set = IntervalSet([Interval(1, 5), Interval(3, 8), Interval(10, 10)])
        assert interval_set.total_covered_span() == 9  # 1..8 plus 10

    def test_covered_points(self):
        interval_set = IntervalSet([Interval(2, 4)])
        assert interval_set.covered_points(range(6)) == [2, 3, 4]


class TestMerging:
    def test_adjacent_merge(self):
        merged = IntervalSet([Interval(1, 3), Interval(4, 6)]).merged()
        assert list(merged) == [Interval(1, 6)]

    def test_overlap_merge(self):
        merged = IntervalSet([Interval(1, 5), Interval(3, 8)]).merged()
        assert list(merged) == [Interval(1, 8)]

    def test_disjoint_not_merged(self):
        original = IntervalSet([Interval(1, 3), Interval(5, 6)])
        assert original.merged() == original

    def test_chain_merge(self):
        merged = IntervalSet([Interval(1, 2), Interval(3, 4), Interval(5, 6)]).merged()
        assert list(merged) == [Interval(1, 6)]

    def test_merge_preserves_coverage(self):
        interval_set = IntervalSet(
            [Interval(1, 4), Interval(5, 9), Interval(12, 14), Interval(13, 20)])
        merged = interval_set.merged()
        for point in range(25):
            assert merged.covers(point) == interval_set.covers(point)


class TestMutationHelpers:
    def test_discard_containing(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(5, 9), Interval(11, 12)])
        removed = interval_set.discard_containing(6)
        assert removed == [Interval(5, 9)]
        assert list(interval_set) == [Interval(1, 3), Interval(11, 12)]

    def test_discard_nothing(self):
        interval_set = IntervalSet([Interval(1, 3)])
        assert interval_set.discard_containing(10) == []
        assert len(interval_set) == 1

    def test_translate_monotone_mapping(self):
        interval_set = IntervalSet([Interval(1, 3), Interval(5, 9)])
        translated = interval_set.translate({1: 11, 3: 13, 5: 15, 9: 19})
        assert list(translated) == [Interval(11, 13), Interval(15, 19)]

    def test_translate_partial_mapping_keeps_unmapped(self):
        interval_set = IntervalSet([Interval(5, 9)])
        translated = interval_set.translate({9: 12})
        assert list(translated) == [Interval(5, 12)]

    def test_translate_non_monotone_raises(self):
        interval_set = IntervalSet([Interval(1, 3)])
        with pytest.raises(ReproError):
            interval_set.translate({1: 100})


class TestIntervalsFromPoints:
    def test_runs_collapse(self):
        interval_set = intervals_from_points([1, 2, 3, 7, 8, 12])
        assert list(interval_set) == [Interval(1, 3), Interval(7, 8), Interval(12, 12)]

    def test_duplicates_and_order_ignored(self):
        assert intervals_from_points([3, 1, 2, 2]) == intervals_from_points([1, 2, 3])

    def test_empty(self):
        assert len(intervals_from_points([])) == 0
