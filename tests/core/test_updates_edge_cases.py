"""Edge cases of the Section 4 update algorithms.

Focus: the gap ledger after removals (freed numbers must become
claimable again), and numbering exhaustion — the integer scheme runs
out and renumbers (or raises when told not to), while the fractional
scheme of the Section 4 footnote never does.
"""

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.updates import claim_slot, detach_subtree, free_ranges_under
from repro.errors import NumberingExhaustedError
from repro.graph.digraph import DiGraph
from repro.testing.invariants import audit_index


def _chain_index(length, **kwargs):
    arcs = [(i, i + 1) for i in range(length - 1)]
    return IntervalTCIndex.build(DiGraph(arcs), **kwargs)


def _total_free(index, parent):
    return sum(hi - lo + 1 for lo, hi in free_ranges_under(index, parent))


# ----------------------------------------------------------------------
# gap reclamation
# ----------------------------------------------------------------------
def test_remove_node_returns_numbers_to_the_parent_gap():
    index = IntervalTCIndex.build(
        DiGraph([("r", "a"), ("r", "b"), ("a", "x")]), gap=2)
    before = _total_free(index, "r")
    freed = index.postorder["b"]
    index.remove_node("b")
    audit_index(index)
    after_ranges = free_ranges_under(index, "r")
    assert any(lo <= freed <= hi for lo, hi in after_ranges), (
        f"number {freed} freed by remove_node is not offered again: "
        f"{after_ranges}")
    assert _total_free(index, "r") > before


def test_detach_subtree_vacates_the_old_ancestors_range():
    index = _chain_index(5, gap=2)
    vacated = [index.postorder[node] for node in (2, 3, 4)]
    detach_subtree(index, 2)  # re-hang 2's subtree under the virtual root
    # The subtree kept its shape but took fresh numbers above the maximum…
    assert all(index.postorder[node] > max(vacated) for node in (2, 3, 4))
    # …and the vacated numbers are claimable under the old ancestor again.
    ranges = free_ranges_under(index, 1)
    for number in vacated:
        assert any(lo <= number <= hi for lo, hi in ranges), (
            f"vacated number {number} not in free ranges {ranges} under 1")


def test_reclaimed_slots_are_actually_claimed_by_new_children():
    index = IntervalTCIndex.build(DiGraph([("r", "a"), ("r", "b")]), gap=1)
    freed = index.postorder["a"]
    index.remove_node("a")
    number, interval = claim_slot(index, "r")
    assert interval.lo <= number <= interval.hi == number
    assert number == freed  # gap=1: the only free slot is the freed one
    index.add_node("c", parents=["r"])
    audit_index(index)
    assert index.postorder["c"] == freed


# ----------------------------------------------------------------------
# numbering exhaustion
# ----------------------------------------------------------------------
def test_integer_gap1_exhaustion_raises_when_auto_renumber_is_off():
    index = _chain_index(3, gap=1, auto_renumber=False)
    with pytest.raises(NumberingExhaustedError):
        claim_slot(index, 2)  # leaf with gap=1: no room below
    with pytest.raises(NumberingExhaustedError):
        index.add_node("extra", parents=[2])
    # The failed insertion must not corrupt the index.
    audit_index(index)
    assert "extra" not in index.postorder


def test_integer_exhaustion_triggers_renumbering_when_enabled():
    index = _chain_index(3, gap=1, auto_renumber=True)
    version = index.version
    index.add_node("extra", parents=[2])
    audit_index(index)
    assert index.reachable(0, "extra")
    assert index.version > version


def test_fractional_numbering_never_exhausts():
    index = _chain_index(3, gap=2, numbering="fractional",
                         auto_renumber=False)
    # Keep inserting under the same leaf: integer numbering would die on
    # the first insert; the continuous scheme always finds a midpoint.
    parent = 2
    for step in range(12):
        label = f"leaf{step}"
        index.add_node(label, parents=[parent])
        parent = label
    audit_index(index)
    assert index.reachable(0, parent)
