"""Tests for the merge-aware sibling-ordering heuristic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import IntervalTCIndex
from repro.core.labeling import label_graph
from repro.core.merge_ordering import (
    order_children_for_merging,
    subtree_external_predecessors,
)
from repro.core.tree_cover import build_tree_cover
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.traversal import reachable_from


@pytest.fixture
def fan_with_skips():
    """p fans out to c1..c4; x targets {c1, c3} and y targets {c2, c4}.

    The default (topological) sibling order is c1, c2, c3, c4, which
    interleaves the two affinity pairs: both x and y pay an extra interval
    after merging.  The heuristic groups each pair adjacently.
    """
    return DiGraph([
        ("r", "p"), ("r", "x"), ("r", "y"),
        ("p", "c1"), ("p", "c2"), ("p", "c3"), ("p", "c4"),
        ("x", "c1"), ("x", "c3"),
        ("y", "c2"), ("y", "c4"),
    ])


def scrambled_cover(graph, order):
    """A tree cover with the children of 'p' forced into ``order``."""
    cover = build_tree_cover(graph)
    cover.children["p"] = list(order)
    return cover


class TestExternalPredecessors:
    def test_direct_arcs_collected(self, fan_with_skips):
        cover = build_tree_cover(fan_with_skips)
        external = subtree_external_predecessors(fan_with_skips, cover)
        assert external["c1"] == frozenset({"x"})
        assert external["c3"] == frozenset({"x"})
        assert external["c2"] == frozenset({"y"})

    def test_subtree_arcs_collected(self):
        graph = DiGraph([("r", "p"), ("r", "x"),
                         ("p", "c"), ("c", "grand"), ("x", "grand")])
        cover = build_tree_cover(graph)
        external = subtree_external_predecessors(graph, cover)
        # The arc into the grandchild surfaces at the child's subtree.
        assert external["c"] == frozenset({"x"})

    def test_arcs_within_subtree_excluded(self):
        graph = DiGraph([("r", "a"), ("a", "b"), ("a", "c"), ("b", "c")])
        cover = build_tree_cover(graph)
        external = subtree_external_predecessors(graph, cover)
        # The b->c arc is internal to a's subtree.
        assert external["a"] == frozenset()

    def test_tree_arcs_never_counted(self):
        tree = random_tree(30, 3)
        cover = build_tree_cover(tree)
        external = subtree_external_predecessors(tree, cover)
        assert all(not sources for sources in external.values())


class TestOrdering:
    def test_affine_children_made_adjacent(self, fan_with_skips):
        cover = build_tree_cover(fan_with_skips)
        order_children_for_merging(fan_with_skips, cover)
        children = cover.tree_children("p")
        assert abs(children.index("c1") - children.index("c3")) == 1

    def test_returns_changed_count(self, fan_with_skips):
        # Force the interleaved (bad) order; the heuristic must change it.
        cover = scrambled_cover(fan_with_skips, ["c1", "c2", "c3", "c4"])
        changed = order_children_for_merging(fan_with_skips, cover)
        assert changed >= 1

    def test_deterministic(self, fan_with_skips):
        orders = []
        for _ in range(3):
            cover = scrambled_cover(fan_with_skips, ["c1", "c2", "c3", "c4"])
            order_children_for_merging(fan_with_skips, cover)
            orders.append(list(cover.tree_children("p")))
        assert orders[0] == orders[1] == orders[2]

    def test_reduces_merged_intervals(self, fan_with_skips):
        # The interleaved order splits both affinity pairs: neither x nor
        # y can merge.  The heuristic regroups them.
        bad = scrambled_cover(fan_with_skips, ["c1", "c2", "c3", "c4"])
        plain = label_graph(fan_with_skips, bad, 1, merge=True)
        smart = scrambled_cover(fan_with_skips, ["c1", "c2", "c3", "c4"])
        order_children_for_merging(fan_with_skips, smart)
        ordered = label_graph(fan_with_skips, smart, 1, merge=True)
        assert ordered.total_intervals <= plain.total_intervals - 2

    def test_kahn_order_often_groups_already(self, fan_with_skips):
        """Without scrambling, topological child order may already pair the
        affinity groups (predecessors release siblings together) — the
        heuristic then keeps the good order."""
        cover = build_tree_cover(fan_with_skips)
        before = label_graph(fan_with_skips, build_tree_cover(fan_with_skips),
                             1, merge=True).total_intervals
        order_children_for_merging(fan_with_skips, cover)
        after = label_graph(fan_with_skips, cover, 1, merge=True).total_intervals
        assert after <= before


class TestBuildIntegration:
    def test_build_flag(self, fan_with_skips):
        plain = IntervalTCIndex.build(fan_with_skips, gap=1, merge=True)
        smart = IntervalTCIndex.build(fan_with_skips, gap=1, merge=True,
                                      merge_ordering=True)
        assert smart.num_intervals <= plain.num_intervals
        smart.verify()

    def test_ordered_index_supports_updates(self, fan_with_skips):
        index = IntervalTCIndex.build(fan_with_skips, gap=8, merge=True,
                                      merge_ordering=True)
        index.add_node("late", parents=["c2"])
        index.remove_arc("x", "c3")
        index.check_invariants()
        index.verify()


@settings(max_examples=30)
@given(st.integers(5, 35), st.floats(1.0, 3.0), st.integers(0, 5000))
def test_ordering_never_breaks_correctness(n, degree, seed):
    graph = random_dag(n, min(degree, (n - 1) / 2), seed)
    index = IntervalTCIndex.build(graph, gap=1, merge=True, merge_ordering=True)
    index.check_invariants()
    for node in graph:
        assert index.successors(node) == reachable_from(graph, node)


@settings(max_examples=20)
@given(st.integers(10, 40), st.integers(0, 2000))
def test_ordering_never_hurts_unmerged_count(n, seed):
    """Sibling permutation cannot change the subsumption-only count."""
    graph = random_dag(n, 2, seed)
    plain = IntervalTCIndex.build(graph, gap=1)
    ordered = IntervalTCIndex.build(graph, gap=1, merge_ordering=True)
    assert ordered.num_intervals == plain.num_intervals
