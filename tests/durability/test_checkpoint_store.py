"""Checkpoint generations, rotation, and DurableTCIndex round trips."""

import json
import os

import pytest

from repro.durability import (DurableTCIndex, list_checkpoints, list_segments,
                              load_checkpoint, log_stats)
from repro.errors import CorruptFileError, PersistenceError
from repro.testing.faults import flip_byte
from repro.testing.oracle import SetClosureOracle

#: A fixed mutation script touching every journalled op kind.
SEQUENCE = [
    ("add_node", "a", ()),
    ("add_node", "b", ("a",)),
    ("add_node", "c", ("b",)),
    ("add_node", "d", ("a",)),
    ("add_arc", "d", "c"),
    ("remove_arc", "b", "c"),
    ("add_node", "e", ("c", "d")),
    ("remove_node", "b"),
]


def apply_all(store, oracle, script=SEQUENCE):
    for op in script:
        kind = op[0]
        if kind == "add_node":
            store.add_node(op[1], list(op[2]))
            oracle.add_node(op[1])
            for parent in op[2]:
                oracle.add_arc(parent, op[1])
        elif kind == "add_arc":
            store.add_arc(op[1], op[2])
            oracle.add_arc(op[1], op[2])
        elif kind == "remove_arc":
            store.remove_arc(op[1], op[2])
            oracle.remove_arc(op[1], op[2])
        elif kind == "remove_node":
            store.remove_node(op[1])
            oracle.remove_node(op[1])


def assert_matches(store, oracle):
    assert sorted(store.nodes(), key=repr) == sorted(oracle.nodes(), key=repr)
    for node in oracle.nodes():
        assert set(store.successors(node)) == set(oracle.successors(node))
    store.verify()


class TestStoreRoundTrip:
    @pytest.mark.parametrize("engine", ["interval", "hybrid"])
    def test_mutate_checkpoint_reopen(self, tmp_path, engine):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory, engine=engine) as store:
            apply_all(store, oracle, SEQUENCE[:5])
            store.checkpoint()
            apply_all(store, oracle, SEQUENCE[5:])
            store.renumber(16)
            store.merge_intervals()
        reopened = DurableTCIndex.open(directory)
        assert reopened.engine_kind == engine
        # the three uncheckpointed script ops plus renumber and merge
        assert reopened.recovery_report.ops_replayed == 5
        assert not reopened.recovery_report.corruption_detected
        assert_matches(reopened, oracle)
        reopened.close()

    def test_reopen_without_checkpoint_replays_everything(self, tmp_path):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory) as store:
            apply_all(store, oracle)
        reopened = DurableTCIndex.open(directory)
        assert reopened.recovery_report.ops_replayed == len(SEQUENCE)
        assert reopened.recovery_report.checkpoint_seq == 0
        assert_matches(reopened, oracle)
        reopened.close()

    def test_existing_config_wins_over_open_arguments(self, tmp_path):
        directory = tmp_path / "store.d"
        DurableTCIndex.open(directory, engine="interval", gap=8).close()
        store = DurableTCIndex.open(directory, engine="hybrid", gap=999)
        assert store.engine_kind == "interval"
        assert store.index.gap == 8
        store.close()

    def test_create_false_requires_existing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DurableTCIndex.open(tmp_path / "missing.d", create=False)

    def test_closed_store_rejects_mutations(self, tmp_path):
        store = DurableTCIndex.open(tmp_path / "store.d")
        store.close()
        with pytest.raises(PersistenceError):
            store.add_node("a")

    def test_constructor_is_blocked(self):
        with pytest.raises(PersistenceError):
            DurableTCIndex()


class TestCheckpointsAndRotation:
    def test_rotation_keeps_newest_generations(self, tmp_path):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory, keep_checkpoints=2) as store:
            for i, op in enumerate(SEQUENCE):
                apply_all(store, oracle, [op])
                store.checkpoint()
        checkpoints = list_checkpoints(directory)
        assert len(checkpoints) == 2
        # every surviving segment must still be replayable on top of the
        # oldest retained generation
        oldest_retained = checkpoints[0][0]
        segments = list_segments(directory)
        assert segments[0][0] <= oldest_retained + 1
        reopened = DurableTCIndex.open(directory)
        assert_matches(reopened, oracle)
        reopened.close()

    def test_fallback_to_older_generation(self, tmp_path):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory, keep_checkpoints=3) as store:
            apply_all(store, oracle, SEQUENCE[:4])
            store.checkpoint()
            apply_all(store, oracle, SEQUENCE[4:])
            store.checkpoint()
        newest = list_checkpoints(directory)[-1][1]
        size = os.path.getsize(newest)
        flip_byte(newest, size // 2, 0x20)
        reopened = DurableTCIndex.open(directory)
        report = reopened.recovery_report
        assert [path for path, _ in report.checkpoints_skipped] == [newest]
        assert report.corruption_detected
        assert_matches(reopened, oracle)
        reopened.close()

    def test_all_checkpoints_lost_replays_from_empty(self, tmp_path):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory) as store:
            apply_all(store, oracle)
        for _, path in list_checkpoints(directory):
            os.remove(path)
        reopened = DurableTCIndex.open(directory)
        assert reopened.recovery_report.started_empty
        assert_matches(reopened, oracle)
        reopened.close()

    def test_load_checkpoint_rejects_garbage(self, tmp_path):
        path = tmp_path / "checkpoint-0000000000000001.json"
        path.write_text("{not json")
        with pytest.raises(CorruptFileError):
            load_checkpoint(path)
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CorruptFileError):
            load_checkpoint(path)


class TestLogStats:
    def test_accounting(self, tmp_path):
        directory = tmp_path / "store.d"
        oracle = SetClosureOracle()
        with DurableTCIndex.open(directory) as store:
            apply_all(store, oracle, SEQUENCE[:5])
            store.checkpoint()
            apply_all(store, oracle, SEQUENCE[5:])
            live = store.log_stats()
            assert live["last_seq"] == len(SEQUENCE)
            assert live["fsync_every"] == 1
        stats = log_stats(directory)
        assert stats["engine"] == "interval"
        assert stats["newest_checkpoint_seq"] == 5
        assert stats["last_seq"] == len(SEQUENCE)
        assert stats["replay_backlog"] == len(SEQUENCE) - 5
        assert stats["torn_bytes"] == 0

    def test_rejects_non_store_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            log_stats(tmp_path)
