"""The shared atomic temp+fsync+rename primitive every saver uses."""

import pytest

from repro.durability.atomic import (RealFS, atomic_write_bytes,
                                     atomic_write_text)
from repro.errors import SimulatedCrash
from repro.testing.faults import FaultyFS


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"one")
        assert target.read_bytes() == b"one"
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert [entry.name for entry in tmp_path.iterdir()] == ["data.bin"]

    def test_text_wrapper(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, '{"k": 1}')
        assert target.read_text() == '{"k": 1}'

    def test_failed_write_keeps_old_and_cleans_temp(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")

        class ExplodingFS(RealFS):
            def write(self, handle, data, *, label=""):
                raise ValueError("disk on fire")

        with pytest.raises(ValueError):
            atomic_write_bytes(target, b"new", fs=ExplodingFS())
        assert target.read_bytes() == b"old"
        assert [entry.name for entry in tmp_path.iterdir()] == ["data.bin"]

    def test_crash_before_rename_keeps_old_file(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        fs = FaultyFS(crash_at="save.pre-rename")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new", fs=fs)
        assert target.read_bytes() == b"old"

    def test_crash_after_rename_has_published(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        fs = FaultyFS(crash_at="save.post-rename")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new", fs=fs)
        assert target.read_bytes() == b"new"

    def test_dropped_rename_never_tears_target(self, tmp_path):
        """The drop-rename crash leaves the complete old file."""
        target = tmp_path / "data.bin"
        target.write_bytes(b"old")
        fs = FaultyFS(crash_at="save.drop-rename")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new", fs=fs)
        assert target.read_bytes() == b"old"
