"""Tests for the crash-safe durability subsystem."""
