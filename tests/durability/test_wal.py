"""WAL framing: round trips, torn tails, and interior-damage detection."""

import struct
import zlib

import pytest

from repro.durability.wal import (RECORD_HEADER, WalWriter, encode_record,
                                  scan_wal, truncate_torn_tail)
from repro.errors import CorruptFileError, PersistenceError
from repro.testing.faults import flip_byte

OPS = [["add_node", "a", []],
       ["add_node", "b", ["a"]],
       ["add_arc", "a", "b"],
       ["renumber", 8],
       ["merge"]]


def write_segment(path, ops, start=1):
    with WalWriter(path, next_seq=start) as writer:
        for op in ops:
            writer.append(op)
    return path


def record_boundaries(ops, start=1):
    """Byte offsets at which each complete record ends (plus offset 0)."""
    boundaries = [0]
    for seq, op in enumerate(ops, start=start):
        boundaries.append(boundaries[-1] + len(encode_record(seq, op)))
    return boundaries


class TestFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        write_segment(path, OPS)
        scan = scan_wal(path)
        assert [op for _, op in scan.records] == OPS
        assert [seq for seq, _ in scan.records] == [1, 2, 3, 4, 5]
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == path.stat().st_size
        assert scan.last_seq == 5

    def test_writer_resume_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        write_segment(path, OPS[:2])
        with WalWriter(path, next_seq=3) as writer:
            assert writer.append(OPS[2]) == 3
            assert writer.last_seq == 3
        assert scan_wal(path).last_seq == 3

    def test_fsync_batching_counts_pending(self, tmp_path):
        with WalWriter(tmp_path / "wal.log", next_seq=1,
                       fsync_every=3) as writer:
            writer.append(OPS[0])
            writer.append(OPS[1])
            assert writer.pending == 2
            writer.append(OPS[2])  # third append triggers the batch sync
            assert writer.pending == 0

    def test_writer_rejects_bad_config(self, tmp_path):
        with pytest.raises(PersistenceError):
            WalWriter(tmp_path / "w.log", next_seq=0)
        with pytest.raises(PersistenceError):
            WalWriter(tmp_path / "w.log", next_seq=1, fsync_every=0)

    def test_append_after_close(self, tmp_path):
        writer = WalWriter(tmp_path / "w.log", next_seq=1)
        writer.close()
        with pytest.raises(PersistenceError):
            writer.append(["merge"])


class TestTornTail:
    def test_every_truncation_point(self, tmp_path):
        """Cutting the file at *any* byte loses only the torn record."""
        full = tmp_path / "full.log"
        write_segment(full, OPS)
        data = full.read_bytes()
        boundaries = record_boundaries(OPS)
        assert boundaries[-1] == len(data)
        for cut in range(len(data) + 1):
            target = tmp_path / "cut.log"
            target.write_bytes(data[:cut])
            scan = scan_wal(target)
            complete = sum(1 for end in boundaries[1:] if end <= cut)
            assert len(scan.records) == complete
            assert scan.valid_bytes == boundaries[complete]
            assert scan.torn_bytes == cut - boundaries[complete]

    def test_truncate_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        write_segment(path, OPS)
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00\x00")  # half a length prefix
        scan = scan_wal(path)
        assert scan.torn_bytes == 3
        assert truncate_torn_tail(path, scan.valid_bytes) == 3
        clean = scan_wal(path)
        assert clean.torn_bytes == 0
        assert len(clean.records) == len(OPS)


class TestInteriorDamage:
    def test_payload_flip_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        write_segment(path, OPS)
        flip_byte(path, RECORD_HEADER.size + 2)  # inside record 1 payload
        with pytest.raises(CorruptFileError):
            scan_wal(path)

    def test_checksum_flip_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        write_segment(path, OPS)
        flip_byte(path, 4)  # CRC field of record 1
        with pytest.raises(CorruptFileError):
            scan_wal(path)

    def test_sequence_jump_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(encode_record(1, OPS[0]) + encode_record(3, OPS[1]))
        with pytest.raises(CorruptFileError):
            scan_wal(path)

    def test_undecodable_payload_raises(self, tmp_path):
        payload = b"\xff\xfe not json"
        blob = RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / "wal.log"
        path.write_bytes(blob)
        with pytest.raises(CorruptFileError):
            scan_wal(path)

    def test_non_list_payload_raises(self, tmp_path):
        payload = b'{"seq": 1}'
        blob = RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / "wal.log"
        path.write_bytes(blob)
        with pytest.raises(CorruptFileError):
            scan_wal(path)
