"""The crash-point sweep and the fault shim it drives."""

import pytest

from repro.errors import ReproError, SimulatedCrash
from repro.testing.crashfuzz import crash_sweep, generate_ops
from repro.testing.faults import CRASH_POINTS, FaultyFS, flip_byte


class TestFaultyFS:
    def test_crash_fires_on_requested_occurrence(self):
        fs = FaultyFS(crash_at="wal.append.pre-write", occurrence=2)
        fs.crash_point("wal.append.pre-write")  # first visit survives
        with pytest.raises(SimulatedCrash) as caught:
            fs.crash_point("wal.append.pre-write")
        assert fs.crashed
        assert caught.value.point == "wal.append.pre-write"
        assert fs.hits["wal.append.pre-write"] == 2

    def test_other_points_never_fire(self):
        fs = FaultyFS(crash_at="checkpoint.pre-rename")
        for _ in range(5):
            fs.crash_point("wal.append.pre-write")
        assert not fs.crashed

    def test_crash_rolls_unsynced_bytes_back(self, tmp_path):
        path = str(tmp_path / "file.log")
        fs = FaultyFS(crash_at="boom")
        handle = fs.open_append(path)
        fs.write(handle, b"durable ", label="w")
        fs.fsync(handle)
        fs.write(handle, b"volatile", label="w")
        with pytest.raises(SimulatedCrash):
            fs.crash_point("boom")
        survived = open(path, "rb").read()
        assert survived.startswith(b"durable ")
        assert len(survived) <= len(b"durable volatile")

    def test_flip_byte_validates_arguments(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abc")
        flip_byte(path, 1, 0x01)
        assert path.read_bytes() == b"acc"
        with pytest.raises(ReproError):
            flip_byte(path, 99)
        with pytest.raises(ReproError):
            flip_byte(path, 0, 0)


class TestGenerateOps:
    def test_deterministic(self):
        assert generate_ops(80, seed=11) == generate_ops(80, seed=11)

    def test_includes_checkpoints_but_never_last(self):
        ops = generate_ops(120, seed=5)
        assert len(ops) == 120
        assert any(op[0] == "checkpoint" for op in ops)
        assert ops[-1][0] != "checkpoint"


class TestCrashSweep:
    def test_interval_sweep_reaches_every_point(self):
        report = crash_sweep(ops=80, seed=2, occurrences_per_point=1)
        assert report.crashes == report.runs
        assert not report.points_never_reached
        assert set(report.crashed_at) == set(CRASH_POINTS)
        # fsync_every=1: nothing acknowledged may be lost
        assert report.max_ops_lost == 0
        assert report.bit_flips > 0

    def test_hybrid_sweep(self):
        report = crash_sweep(ops=60, seed=4, engine="hybrid",
                             occurrences_per_point=1, bit_flips=False)
        assert not report.points_never_reached
        assert report.max_ops_lost == 0

    def test_fsync_batching_respects_loss_bound(self):
        report = crash_sweep(ops=80, seed=6, fsync_every=4,
                             occurrences_per_point=1, bit_flips=False)
        assert report.max_ops_lost <= 3
