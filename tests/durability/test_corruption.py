"""Parametrized corruption matrix: every damage mode recovers exactly or
raises a typed error — never a silently wrong index.

The store fixture journals a fixed op script with a mid-stream
checkpoint, so the tail WAL segment has several records to damage.
Because every script entry journals exactly one record, the oracle state
after sequence ``s`` is the script prefix ``OPS[:s]`` — which is what
each recovered store is compared against.
"""

import json
import os

import pytest

from repro.core.index import IntervalTCIndex
from repro.core.serialize import save_index
from repro.factory import open_index
from repro.durability import DurableTCIndex, list_checkpoints, scan_wal
from repro.durability.wal import RECORD_HEADER, encode_record
from repro.errors import (CorruptFileError, PersistenceError, RecoveryError,
                          ReproError)
from repro.graph.digraph import DiGraph
from repro.storage.diskindex import DiskIntervalIndex, write_index
from repro.testing.faults import flip_byte
from repro.testing.oracle import SetClosureOracle

#: Journal-format ops; each entry lands in the WAL as one record.
OPS = [
    ["add_node", "a", []],
    ["add_node", "b", ["a"]],
    ["add_node", "c", ["a"]],
    ["add_arc", "b", "c"],
    ["add_node", "d", ["b", "c"]],
    ["renumber", 16],
    ["remove_arc", "b", "c"],
    ["add_node", "e", ["d"]],
    ["merge"],
    ["remove_node", "c"],
    ["add_node", "f", ["a", "e"]],
]

CHECKPOINT_AT = 5  # ops journalled before the mid-stream checkpoint


def apply_to_store(store, op):
    kind = op[0]
    if kind == "add_node":
        store.add_node(op[1], op[2])
    elif kind == "add_arc":
        store.add_arc(op[1], op[2])
    elif kind == "remove_arc":
        store.remove_arc(op[1], op[2])
    elif kind == "remove_node":
        store.remove_node(op[1])
    elif kind == "renumber":
        store.renumber(op[1])
    elif kind == "merge":
        store.merge_intervals()


def oracle_after(ops):
    oracle = SetClosureOracle()
    for op in ops:
        kind = op[0]
        if kind == "add_node":
            oracle.add_node(op[1])
            for parent in op[2]:
                oracle.add_arc(parent, op[1])
        elif kind == "add_arc":
            oracle.add_arc(op[1], op[2])
        elif kind == "remove_arc":
            oracle.remove_arc(op[1], op[2])
        elif kind == "remove_node":
            oracle.remove_node(op[1])
        # renumber / merge change the representation, not the relation
    return oracle


def assert_state_is_prefix(store, upto):
    oracle = oracle_after(OPS[:upto])
    assert sorted(store.nodes(), key=repr) == sorted(oracle.nodes(), key=repr)
    for node in oracle.nodes():
        assert set(store.successors(node)) == set(oracle.successors(node))
    store.verify()


@pytest.fixture
def store_dir(tmp_path):
    directory = str(tmp_path / "store.d")
    with DurableTCIndex.open(directory) as store:
        for op in OPS[:CHECKPOINT_AT]:
            apply_to_store(store, op)
        store.checkpoint()
        for op in OPS[CHECKPOINT_AT:]:
            apply_to_store(store, op)
    return directory


def tail_segment(directory):
    """Path and scan of the live tail segment (records after the
    checkpoint)."""
    from repro.durability.checkpoint import list_segments
    path = list_segments(directory)[-1][1]
    return path, scan_wal(path)


def tail_boundaries(scan):
    boundaries = [0]
    for seq, op in scan.records:
        boundaries.append(boundaries[-1] + len(encode_record(seq, op)))
    return boundaries


class TestTailTruncation:
    @pytest.mark.parametrize("kept", range(len(OPS) - CHECKPOINT_AT + 1))
    def test_cut_at_every_record_boundary(self, store_dir, kept):
        """Truncating the tail to ``kept`` whole records recovers exactly
        the checkpoint plus those records."""
        path, scan = tail_segment(store_dir)
        boundaries = tail_boundaries(scan)
        with open(path, "r+b") as handle:
            handle.truncate(boundaries[kept])
        with DurableTCIndex.open(store_dir) as store:
            assert store.last_seq == CHECKPOINT_AT + kept
            assert_state_is_prefix(store, CHECKPOINT_AT + kept)

    @pytest.mark.parametrize("kept", range(len(OPS) - CHECKPOINT_AT))
    def test_cut_mid_record_truncates_torn_tail(self, store_dir, kept):
        """A cut *inside* a record keeps the records before it and
        reports the torn bytes."""
        path, scan = tail_segment(store_dir)
        boundaries = tail_boundaries(scan)
        with open(path, "r+b") as handle:
            handle.truncate(boundaries[kept] + 3)
        with DurableTCIndex.open(store_dir) as store:
            report = store.recovery_report
            assert report.truncated_bytes == 3
            assert report.corruption_detected
            assert_state_is_prefix(store, CHECKPOINT_AT + kept)


class TestTailBitFlips:
    @pytest.mark.parametrize("field_offset,name", [
        (0, "length"), (4, "checksum"), (RECORD_HEADER.size + 1, "payload")])
    @pytest.mark.parametrize("record", [0, 2])
    def test_flip_is_detected_never_silent(self, store_dir, record,
                                           field_offset, name):
        path, scan = tail_segment(store_dir)
        boundaries = tail_boundaries(scan)
        flip_byte(path, boundaries[record] + field_offset, 0x10)
        try:
            store = DurableTCIndex.open(store_dir)
        except (CorruptFileError, RecoveryError):
            return  # typed refusal is a correct outcome
        # A length flip can masquerade as a torn tail; then the store
        # must hold exactly the surviving prefix and say so.
        with store:
            report = store.recovery_report
            assert report.corruption_detected
            assert report.last_seq <= CHECKPOINT_AT + record
            assert_state_is_prefix(store, report.last_seq)


class TestCheckpointDamage:
    def test_flipped_checkpoint_falls_back_and_replays(self, store_dir):
        newest = list_checkpoints(store_dir)[-1][1]
        flip_byte(newest, os.path.getsize(newest) // 2, 0x20)
        with DurableTCIndex.open(store_dir) as store:
            report = store.recovery_report
            assert report.checkpoints_skipped
            assert_state_is_prefix(store, len(OPS))

    def test_deleted_checkpoint_falls_back_and_replays(self, store_dir):
        for _, path in list_checkpoints(store_dir):
            os.remove(path)
        with DurableTCIndex.open(store_dir) as store:
            assert store.recovery_report.started_empty
            assert_state_is_prefix(store, len(OPS))

    def test_truncated_checkpoint_is_skipped(self, store_dir):
        newest = list_checkpoints(store_dir)[-1][1]
        size = os.path.getsize(newest)
        with open(newest, "r+b") as handle:
            handle.truncate(size // 2)
        with DurableTCIndex.open(store_dir) as store:
            assert store.recovery_report.checkpoints_skipped
            assert_state_is_prefix(store, len(OPS))

    def test_unusable_checkpoint_with_rotated_log_refuses(self, tmp_path):
        """No generation loads and the log no longer reaches seq 1: a
        typed error, not a partial answer."""
        directory = str(tmp_path / "store.d")
        with DurableTCIndex.open(directory, keep_checkpoints=1) as store:
            for op in OPS[:CHECKPOINT_AT]:
                apply_to_store(store, op)
            store.checkpoint()
            apply_to_store(store, OPS[CHECKPOINT_AT])
            store.checkpoint()
        for _, path in list_checkpoints(directory):
            os.remove(path)
        with pytest.raises((RecoveryError, PersistenceError)):
            DurableTCIndex.open(directory)


class TestCorruptPlainFiles:
    """Satellite: the JSON and RTCX loaders raise typed errors."""

    def build_index(self):
        graph = DiGraph(arcs=[("a", "b"), ("b", "c"), ("a", "d")])
        return IntervalTCIndex.build(graph)

    def test_truncated_json_index(self, tmp_path):
        path = str(tmp_path / "closure.json")
        save_index(self.build_index(), path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        with pytest.raises(CorruptFileError):
            open_index(path, engine="interval")
        with pytest.raises(CorruptFileError):
            open_index(path)

    def test_missing_tables_json(self, tmp_path):
        """Right kind and version, but the payload tables are gone."""
        path = str(tmp_path / "closure.json")
        with open(path, "w") as handle:
            json.dump({"format_version": 1}, handle)
        with pytest.raises(CorruptFileError):
            open_index(path, engine="interval")

    def test_non_dict_json(self, tmp_path):
        path = str(tmp_path / "closure.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(CorruptFileError):
            open_index(path)

    def test_rtcx_bad_magic(self, tmp_path):
        path = str(tmp_path / "closure.rtcx")
        write_index(self.build_index(), path)
        flip_byte(path, 0)
        with pytest.raises(CorruptFileError):
            DiskIntervalIndex.open(path)

    def test_rtcx_truncated_body(self, tmp_path):
        """Cut inside the label section (the heap is read lazily, so the
        damage must hit one of the eagerly-loaded sections)."""
        from repro.storage.diskindex import _HEADER
        path = str(tmp_path / "closure.rtcx")
        write_index(self.build_index(), path)
        with open(path, "r+b") as handle:
            handle.truncate(_HEADER.size + 4)
        with pytest.raises(CorruptFileError):
            DiskIntervalIndex.open(path)

    def test_corrupt_error_is_repro_error(self):
        assert issubclass(CorruptFileError, ReproError)
