"""Tests for the IS-A taxonomy abstract data type."""

import pytest

from repro.errors import TaxonomyError
from repro.kb.taxonomy import Taxonomy


@pytest.fixture
def animals():
    taxonomy = Taxonomy()
    taxonomy.define("animal")
    taxonomy.define("mammal", ["animal"])
    taxonomy.define("bird", ["animal"])
    taxonomy.define("dog", ["mammal"])
    taxonomy.define("cat", ["mammal"])
    taxonomy.define("pet", ["animal"])
    taxonomy.define("pet-dog", ["dog", "pet"])
    return taxonomy


class TestDefinition:
    def test_root_exists(self):
        taxonomy = Taxonomy(root="TOP")
        assert "TOP" in taxonomy
        assert len(taxonomy) == 1

    def test_default_parent_is_root(self):
        taxonomy = Taxonomy()
        taxonomy.define("thing")
        assert taxonomy.is_a("thing", "THING")

    def test_duplicate_concept_rejected(self, animals):
        with pytest.raises(TaxonomyError):
            animals.define("dog", ["animal"])

    def test_unknown_parent_rejected(self, animals):
        with pytest.raises(TaxonomyError):
            animals.define("unicorn", ["mythical"])

    def test_from_edges_any_order(self):
        taxonomy = Taxonomy.from_edges([
            ("mammal", "dog"),            # child before parent is defined
            ("animal", "mammal"),
            ("THING", "animal"),
        ])
        assert taxonomy.is_a("dog", "animal")

    def test_from_edges_undefined_parent(self):
        with pytest.raises(TaxonomyError):
            Taxonomy.from_edges([("ghost", "dog")], root="TOP")


class TestSubsumption:
    def test_is_a_transitive(self, animals):
        assert animals.is_a("pet-dog", "animal")
        assert animals.is_a("dog", "animal")
        assert not animals.is_a("animal", "dog")

    def test_is_a_reflexive(self, animals):
        assert animals.is_a("dog", "dog")

    def test_is_a_unknown_concepts(self, animals):
        with pytest.raises(TaxonomyError):
            animals.is_a("ghost", "animal")
        with pytest.raises(TaxonomyError):
            animals.is_a("animal", "ghost")

    def test_sub_and_superconcepts(self, animals):
        assert animals.subconcepts("mammal") == {"dog", "cat", "pet-dog"}
        assert animals.subconcepts("mammal", strict=False) >= {"mammal", "dog"}
        assert animals.superconcepts("pet-dog") == \
            {"dog", "pet", "mammal", "animal", "THING"}

    def test_parents_children(self, animals):
        assert animals.parents("pet-dog") == {"dog", "pet"}
        assert animals.children("mammal") == {"dog", "cat"}

    def test_add_subsumption(self, animals):
        animals.define("guard-animal", ["animal"])
        animals.add_subsumption("guard-animal", "dog")
        assert animals.is_a("dog", "guard-animal")
        assert animals.is_a("pet-dog", "guard-animal")
        animals.index.verify()

    def test_self_subsumption_rejected(self, animals):
        with pytest.raises(TaxonomyError):
            animals.add_subsumption("dog", "dog")


class TestReasoning:
    def test_least_common_subsumers(self, animals):
        assert animals.least_common_subsumers(["dog", "cat"]) == {"mammal"}
        assert animals.least_common_subsumers(["dog", "bird"]) == {"animal"}
        assert animals.least_common_subsumers(["pet-dog"]) == {"pet-dog"}

    def test_disjointness(self, animals):
        assert animals.are_disjoint("bird", "mammal")
        assert not animals.are_disjoint("pet", "dog")       # pet-dog below both
        assert not animals.are_disjoint("mammal", "dog")    # comparable

    def test_classify_finds_existing(self, animals):
        assert animals.classify(parents=["dog", "pet"]) == "pet-dog"

    def test_classify_returns_none_when_absent(self, animals):
        assert animals.classify(parents=["bird", "pet"]) is None

    def test_classify_with_children_bound(self, animals):
        assert animals.classify(parents=["mammal"], children=["dog", "cat"]) \
            is None or animals.is_a("dog", "mammal")

    def test_depth(self, animals):
        assert animals.depth("THING") == 0
        assert animals.depth("animal") == 1
        assert animals.depth("pet-dog") == 4   # THING/animal/mammal/dog/pet-dog


class TestForget:
    def test_forget_leaf(self, animals):
        animals.forget("pet-dog")
        assert "pet-dog" not in animals
        animals.index.verify()

    def test_forget_internal_keeps_others(self, animals):
        animals.forget("mammal")
        assert "dog" in animals
        assert not animals.is_a("dog", "animal")   # only path went via mammal
        animals.index.verify()

    def test_forget_root_rejected(self, animals):
        with pytest.raises(TaxonomyError):
            animals.forget("THING")

    def test_forget_unknown_rejected(self, animals):
        with pytest.raises(TaxonomyError):
            animals.forget("ghost")


class TestScale:
    def test_thousand_concepts_incrementally(self):
        import random
        rng = random.Random(42)
        taxonomy = Taxonomy(gap=64)
        names = []
        for step in range(400):
            name = f"c{step}"
            if names and rng.random() < 0.8:
                parents = rng.sample(names, k=min(len(names), rng.randint(1, 2)))
            else:
                parents = []
            taxonomy.define(name, parents)
            names.append(name)
        assert len(taxonomy) == 401
        taxonomy.index.check_invariants()
        taxonomy.index.verify()
