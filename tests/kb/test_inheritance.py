"""Tests for property inheritance along the compressed closure."""

import pytest

from repro.errors import TaxonomyError
from repro.kb.inheritance import InheritanceEngine
from repro.kb.taxonomy import Taxonomy


@pytest.fixture
def engine():
    taxonomy = Taxonomy()
    taxonomy.define("vehicle")
    taxonomy.define("motorized", ["vehicle"])
    taxonomy.define("two-wheeler", ["vehicle"])
    taxonomy.define("car", ["motorized"])
    taxonomy.define("motorcycle", ["motorized", "two-wheeler"])
    taxonomy.define("bicycle", ["two-wheeler"])
    engine = InheritanceEngine(taxonomy)
    engine.set_property("vehicle", "wheels", 4)
    engine.set_property("two-wheeler", "wheels", 2)
    engine.set_property("motorized", "engine", True)
    return engine


class TestLocalProperties:
    def test_set_and_get(self, engine):
        assert engine.local_properties("vehicle") == {"wheels": 4}
        assert engine.local_properties("car") == {}

    def test_unknown_concept(self, engine):
        with pytest.raises(TaxonomyError):
            engine.set_property("ghost", "x", 1)
        with pytest.raises(TaxonomyError):
            engine.local_properties("ghost")


class TestInheritance:
    def test_plain_inheritance(self, engine):
        assert engine.effective_property("car", "wheels") == 4
        assert engine.effective_property("car", "engine") is True

    def test_most_specific_wins(self, engine):
        # motorcycle inherits wheels from two-wheeler (more specific than
        # vehicle's default of 4).
        assert engine.effective_property("motorcycle", "wheels") == 2
        assert engine.effective_property("bicycle", "wheels") == 2

    def test_missing_property_is_none(self, engine):
        assert engine.effective_property("bicycle", "engine") is None

    def test_own_value_beats_inherited(self, engine):
        engine.set_property("car", "wheels", 3)   # quirky trike-car
        assert engine.effective_property("car", "wheels") == 3

    def test_effective_properties_bundle(self, engine):
        assert engine.effective_properties("motorcycle") == \
            {"wheels": 2, "engine": True}

    def test_unknown_concept(self, engine):
        with pytest.raises(TaxonomyError):
            engine.effective_properties("ghost")


class TestConflicts:
    def test_incomparable_conflict_raises(self, engine):
        engine.taxonomy.define("amphibious", ["vehicle"])
        engine.set_property("amphibious", "wheels", 6)
        engine.taxonomy.define("amphibious-bike", ["amphibious", "two-wheeler"])
        with pytest.raises(TaxonomyError) as excinfo:
            engine.effective_property("amphibious-bike", "wheels")
        assert "conflict" in str(excinfo.value)

    def test_agreeing_values_do_not_conflict(self, engine):
        engine.taxonomy.define("sidecar", ["vehicle"])
        engine.set_property("sidecar", "wheels", 2)   # agrees with two-wheeler
        engine.taxonomy.define("rig", ["sidecar", "two-wheeler"])
        assert engine.effective_property("rig", "wheels") == 2


class TestProviders:
    def test_providers_most_specific_first(self, engine):
        ranked = engine.providers("motorcycle", "wheels")
        assert ranked[0] == "two-wheeler"
        assert "vehicle" in ranked

    def test_concepts_with_property(self, engine):
        holders = engine.concepts_with_property("engine")
        assert holders == {"motorized", "car", "motorcycle"}

    def test_concepts_with_unknown_property(self, engine):
        assert engine.concepts_with_property("wings") == set()
