"""Tests for the terminological classifier (Section 2.1's key inference)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TaxonomyError
from repro.kb.classifier import Classifier


@pytest.fixture
def devices():
    classifier = Classifier()
    classifier.define("device", features=["artifact"])
    classifier.define("electronic", ["device"], features=["powered"])
    classifier.define("sensor", ["electronic"], features=["measures"])
    classifier.define("implant", ["device"], features=["implantable", "sterile"])
    return classifier


class TestDefinitions:
    def test_features_accumulate_from_parents(self, devices):
        assert devices.features_of("sensor") == \
            frozenset({"artifact", "powered", "measures"})

    def test_duplicate_name_rejected(self, devices):
        with pytest.raises(TaxonomyError):
            devices.define("sensor")

    def test_unknown_parent_rejected(self, devices):
        with pytest.raises(TaxonomyError):
            devices.effective_features(["ghost"], [])

    def test_equivalent_definition_returns_existing(self, devices):
        # Same effective feature set as 'sensor', different syntax.
        result = devices.define("measuring-electronic-device", ["device"],
                                features=["powered", "measures"])
        assert result == "sensor"
        assert "measuring-electronic-device" not in devices.concepts()


class TestClassification:
    def test_inserted_below_most_specific_subsumer(self, devices):
        devices.define("thermometer", ["sensor"], features=["temperature"])
        assert devices.subsumes("sensor", "thermometer")
        assert devices.subsumes("device", "thermometer")
        assert not devices.subsumes("implant", "thermometer")

    def test_definition_order_does_not_matter(self):
        first = Classifier()
        first.define("a", features=["x"])
        first.define("b", features=["x", "y"])
        first.define("c", features=["x", "y", "z"])

        second = Classifier()
        second.define("c", features=["x", "y", "z"])
        second.define("a", features=["x"])
        second.define("b", features=["x", "y"])

        for general, specific in [("a", "b"), ("b", "c"), ("a", "c")]:
            assert first.subsumes(general, specific)
            assert second.subsumes(general, specific)
        first.check_lattice_consistency()
        second.check_lattice_consistency()

    def test_late_general_concept_adopts_existing(self, devices):
        """Defining a *generalisation* after its specialisations exist."""
        devices.define("implantable-sensor", ["sensor", "implant"])
        devices.define("sterile-thing", features=["artifact", "sterile"])
        # sterile-thing subsumes implant (and transitively implantable-sensor)
        # even though it was defined later.
        assert devices.subsumes("sterile-thing", "implant")
        assert devices.subsumes("sterile-thing", "implantable-sensor")
        devices.check_lattice_consistency()

    def test_multiple_inheritance_meet(self, devices):
        devices.define("implantable-sensor", ["sensor", "implant"])
        assert devices.subsumes("sensor", "implantable-sensor")
        assert devices.subsumes("implant", "implantable-sensor")
        devices.check_lattice_consistency()

    def test_incomparable_stay_incomparable(self, devices):
        assert not devices.subsumes("sensor", "implant")
        assert not devices.subsumes("implant", "sensor")


class TestLatticeSearch:
    def test_most_specific_subsumers(self, devices):
        subsumers = devices.most_specific_subsumers(
            frozenset({"artifact", "powered", "measures", "temperature"}))
        assert subsumers == {"sensor"}

    def test_root_is_fallback(self, devices):
        assert devices.most_specific_subsumers(frozenset({"unrelated"})) == \
            {devices.taxonomy.root}

    def test_most_general_subsumees(self, devices):
        # {artifact} equals device's own denotation (handled by the
        # equivalence short-circuit), so the strict subsumees are device's
        # incomparable children.
        below = devices.most_general_subsumees(frozenset({"artifact"}))
        assert below == {"electronic", "implant"}

    def test_most_general_subsumees_strict(self, devices):
        below = devices.most_general_subsumees(frozenset())
        assert below == {"device"}

    def test_subsumees_of_unmatched_denotation(self, devices):
        assert devices.most_general_subsumees(
            frozenset({"no-such-feature"})) == set()


@settings(max_examples=30)
@given(st.lists(st.sets(st.sampled_from("abcdef"), max_size=4), max_size=10),
       st.integers(0, 10 ** 6))
def test_structural_order_equals_feature_inclusion(feature_sets, seed):
    """The classified taxonomy's order IS feature-set inclusion, always."""
    rng = random.Random(seed)
    rng.shuffle(feature_sets)
    classifier = Classifier()
    for counter, features in enumerate(feature_sets):
        try:
            classifier.define(("c", counter), features=sorted(features))
        except TaxonomyError:
            pytest.fail("definition unexpectedly rejected")
    classifier.check_lattice_consistency()
    classifier.taxonomy.index.verify()
