"""Tests for the ABox (individuals over a taxonomy)."""

import pytest

from repro.errors import TaxonomyError
from repro.kb.abox import ABox
from repro.kb.taxonomy import Taxonomy


@pytest.fixture
def world():
    taxonomy = Taxonomy()
    for concept, parents in [
        ("animal", []), ("mammal", ["animal"]), ("bird", ["animal"]),
        ("dog", ["mammal"]), ("cat", ["mammal"]),
        ("pet", ["animal"]), ("pet-dog", ["dog", "pet"]),
    ]:
        taxonomy.define(concept, parents)
    box = ABox(taxonomy)
    box.assert_instance("rex", "pet-dog")
    box.assert_instance("tom", "cat")
    box.assert_instance("tweety", "bird")
    box.assert_instance("generic", "animal")
    return taxonomy, box


class TestAssertions:
    def test_assert_under_unknown_concept(self, world):
        _, box = world
        with pytest.raises(TaxonomyError):
            box.assert_instance("x", "unicorn")

    def test_individuals(self, world):
        _, box = world
        assert box.individuals() == {"rex", "tom", "tweety", "generic"}
        assert len(box) == 4

    def test_multiple_assertions(self, world):
        _, box = world
        box.assert_instance("rex", "cat")   # chimera, but legal
        assert box.asserted_concepts("rex") == {"pet-dog", "cat"}

    def test_retract(self, world):
        _, box = world
        box.retract_instance("tweety", "bird")
        assert "tweety" not in box.individuals()

    def test_retract_unknown(self, world):
        _, box = world
        with pytest.raises(TaxonomyError):
            box.retract_instance("rex", "bird")

    def test_forget_individual(self, world):
        _, box = world
        box.forget_individual("rex")
        assert "rex" not in box.individuals()
        assert box.instances_of("dog") == set()

    def test_unknown_individual(self, world):
        _, box = world
        with pytest.raises(TaxonomyError):
            box.asserted_concepts("ghost")


class TestRetrieval:
    def test_is_instance_transitive(self, world):
        _, box = world
        assert box.is_instance("rex", "animal")
        assert box.is_instance("rex", "pet")
        assert not box.is_instance("rex", "bird")
        assert not box.is_instance("generic", "dog")

    def test_is_instance_unknown_concept(self, world):
        _, box = world
        with pytest.raises(TaxonomyError):
            box.is_instance("rex", "unicorn")

    def test_instances_of(self, world):
        _, box = world
        assert box.instances_of("mammal") == {"rex", "tom"}
        assert box.instances_of("animal") == {"rex", "tom", "tweety", "generic"}
        assert box.instances_of("pet") == {"rex"}

    def test_instances_of_direct(self, world):
        _, box = world
        assert box.instances_of("animal", direct=True) == {"generic"}
        assert box.instances_of("dog", direct=True) == set()

    def test_count(self, world):
        _, box = world
        assert box.count_instances("mammal") == 2

    def test_concepts_of(self, world):
        _, box = world
        assert box.concepts_of("rex") == \
            {"pet-dog", "dog", "pet", "mammal", "animal", "THING"}

    def test_concepts_of_most_specific(self, world):
        _, box = world
        box.assert_instance("rex", "dog")   # redundant: pet-dog already below
        assert box.concepts_of("rex", most_specific=True) == {"pet-dog"}

    def test_common_concepts(self, world):
        _, box = world
        shared = box.common_concepts(["rex", "tom"])
        assert "mammal" in shared and "bird" not in shared

    def test_common_concepts_empty(self, world):
        _, box = world
        assert box.common_concepts([]) == set()


class TestInteractionWithIgnore:
    def test_ignored_concept_hides_instances(self, world):
        taxonomy, box = world
        taxonomy.ignore("pet-dog")
        # rex's only assertion is under the ignored concept: dormant.
        assert box.instances_of("dog") == set()
        assert not box.is_instance("rex", "animal")
        taxonomy.restore("pet-dog")
        assert box.is_instance("rex", "animal")

    def test_growing_taxonomy_extends_retrieval(self, world):
        taxonomy, box = world
        taxonomy.define("puppy", ["dog"])
        box.assert_instance("spot", "puppy")
        assert box.is_instance("spot", "mammal")
        assert box.instances_of("dog") == {"rex", "spot"}
