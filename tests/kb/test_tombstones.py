"""Tests for logical deletion ("deleted to be ignored", Section 4.2)."""

import pytest

from repro.errors import TaxonomyError
from repro.kb.taxonomy import Taxonomy


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    for concept, parents in [
        ("a", []), ("b", ["a"]), ("c", ["a"]), ("d", ["b", "c"]),
    ]:
        t.define(concept, parents)
    return t


class TestIgnore:
    def test_ignored_concept_disappears(self, taxonomy):
        taxonomy.ignore("b")
        assert "b" not in taxonomy
        assert taxonomy.is_ignored("b")
        assert len(taxonomy) == 4   # THING + a, c, d

    def test_no_index_update_happens(self, taxonomy):
        """The paper's point: ignoring is free — the closure is untouched."""
        before = taxonomy.index.num_intervals
        snapshot = {node: taxonomy.index.intervals[node].copy()
                    for node in taxonomy.index.nodes()}
        taxonomy.ignore("b")
        assert taxonomy.index.num_intervals == before
        for node, intervals in snapshot.items():
            assert taxonomy.index.intervals[node] == intervals

    def test_remaining_relationships_unchanged(self, taxonomy):
        taxonomy.ignore("b")
        assert taxonomy.is_a("d", "a")        # still, via the structure
        assert taxonomy.is_a("d", "c")

    def test_query_results_filtered(self, taxonomy):
        taxonomy.ignore("b")
        assert "b" not in taxonomy.subconcepts("a")
        assert "b" not in taxonomy.superconcepts("d")
        assert taxonomy.parents("d") == {"c"}
        assert taxonomy.children("a") == {"c"}

    def test_queries_on_ignored_concept_fail(self, taxonomy):
        taxonomy.ignore("b")
        with pytest.raises(TaxonomyError):
            taxonomy.subconcepts("b")
        with pytest.raises(TaxonomyError):
            taxonomy.is_a("b", "a")
        with pytest.raises(TaxonomyError):
            taxonomy.define("e", ["b"])

    def test_cannot_ignore_root(self, taxonomy):
        with pytest.raises(TaxonomyError):
            taxonomy.ignore("THING")

    def test_cannot_ignore_twice_implicitly(self, taxonomy):
        taxonomy.ignore("b")
        with pytest.raises(TaxonomyError):
            taxonomy.ignore("b")   # already invisible


class TestRestore:
    def test_restore_brings_back(self, taxonomy):
        taxonomy.ignore("b")
        taxonomy.restore("b")
        assert "b" in taxonomy
        assert taxonomy.is_a("b", "a")
        assert "b" in taxonomy.superconcepts("d")

    def test_restore_unknown(self, taxonomy):
        with pytest.raises(TaxonomyError):
            taxonomy.restore("b")


class TestInteractionWithReasoning:
    def test_lcs_skips_ignored(self, taxonomy):
        taxonomy.define("e", ["b"])
        taxonomy.define("f", ["b"])
        assert taxonomy.least_common_subsumers(["e", "f"]) == {"b"}
        taxonomy.ignore("b")
        # With b gone the most specific common subsumer bubbles up to a.
        assert taxonomy.least_common_subsumers(["e", "f"]) == {"a"}

    def test_disjointness_ignores_tombstoned_witness(self, taxonomy):
        # d is the only common descendant of b and c.
        assert not taxonomy.are_disjoint("b", "c")
        taxonomy.ignore("d")
        assert taxonomy.are_disjoint("b", "c")

    def test_classify_skips_ignored(self, taxonomy):
        assert taxonomy.classify(parents=["b", "c"]) == "d"
        taxonomy.ignore("d")
        assert taxonomy.classify(parents=["b", "c"]) is None

    def test_forget_clears_tombstone(self, taxonomy):
        taxonomy.ignore("b")
        taxonomy.forget("b")
        with pytest.raises(TaxonomyError):
            taxonomy.restore("b")
