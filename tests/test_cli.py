"""End-to-end tests for the repro-tc command line interface."""

import pytest

from repro.cli import main

EDGES = """\
a b
a c
b d
c d
"""


@pytest.fixture
def edges_file(tmp_path):
    path = tmp_path / "graph.edges"
    path.write_text(EDGES)
    return str(path)


class TestBuild:
    def test_build_prints_stats(self, edges_file, capsys):
        assert main(["build", edges_file]) == 0
        out = capsys.readouterr().out
        assert "index built" in out
        assert "num_intervals" in out

    def test_build_writes_index(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "closure.json")
        assert main(["build", edges_file, "-o", target]) == 0
        assert "index written" in capsys.readouterr().out

    def test_build_options(self, edges_file, capsys):
        assert main(["build", edges_file, "--policy", "first_parent",
                     "--gap", "4", "--merge"]) == 0
        assert "first_parent" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["build", "/no/such/file"]) == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_reachable_exit_zero(self, edges_file, capsys):
        assert main(["query", edges_file, "a", "d"]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_not_reachable_exit_one(self, edges_file, capsys):
        assert main(["query", edges_file, "d", "a"]) == 1
        assert "not-reachable" in capsys.readouterr().out

    def test_query_saved_index(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "closure.json")
        main(["build", edges_file, "-o", target])
        capsys.readouterr()
        assert main(["query", target, "a", "d"]) == 0

    def test_unknown_node_is_error(self, edges_file, capsys):
        assert main(["query", edges_file, "a", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestListing:
    def test_successors(self, edges_file, capsys):
        assert main(["successors", edges_file, "a"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["b", "c", "d"]

    def test_predecessors(self, edges_file, capsys):
        assert main(["predecessors", edges_file, "d"]) == 0
        assert capsys.readouterr().out.split() == ["a", "b", "c"]


class TestFrozenEngine:
    def test_query_engine_frozen(self, edges_file, capsys):
        assert main(["query", edges_file, "a", "d", "--engine", "frozen"]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_successors_engine_frozen(self, edges_file, capsys):
        assert main(["successors", edges_file, "a", "--engine", "frozen"]) == 0
        assert capsys.readouterr().out.split() == ["b", "c", "d"]

    def test_predecessors_engine_frozen(self, edges_file, capsys):
        assert main(["predecessors", edges_file, "d",
                     "--engine", "frozen"]) == 0
        assert capsys.readouterr().out.split() == ["a", "b", "c"]

    def test_freeze_writes_buffers(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "frozen.json")
        assert main(["freeze", edges_file, "-o", target]) == 0
        out = capsys.readouterr().out
        assert "frozen index" in out and "frozen buffers written" in out
        assert main(["query", target, "a", "d"]) == 0
        capsys.readouterr()
        assert main(["predecessors", target, "d"]) == 0
        assert capsys.readouterr().out.split() == ["a", "b", "c"]

    def test_freeze_array_backend(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "frozen.json")
        assert main(["freeze", edges_file, "-o", target,
                     "--backend", "array"]) == 0
        assert "array" in capsys.readouterr().out

    def test_freeze_saved_index(self, edges_file, tmp_path, capsys):
        closure = str(tmp_path / "closure.json")
        frozen = str(tmp_path / "frozen.json")
        main(["build", edges_file, "-o", closure])
        capsys.readouterr()
        assert main(["freeze", closure, "-o", frozen]) == 0
        capsys.readouterr()
        assert main(["query", frozen, "d", "a"]) == 1

    def test_frozen_file_rejects_dict_engine(self, edges_file, tmp_path,
                                             capsys):
        target = str(tmp_path / "frozen.json")
        main(["freeze", edges_file, "-o", target])
        capsys.readouterr()
        assert main(["query", target, "a", "d", "--engine", "dict"]) == 2
        assert "error" in capsys.readouterr().err

    def test_frozen_unknown_node_is_error(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "frozen.json")
        main(["freeze", edges_file, "-o", target])
        capsys.readouterr()
        assert main(["query", target, "a", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats(self, edges_file, capsys):
        assert main(["stats", edges_file]) == 0
        out = capsys.readouterr().out
        assert "full_closure" in out and "compressed" in out

    def test_stats_with_inverse(self, edges_file, capsys):
        assert main(["stats", edges_file, "--inverse"]) == 0
        assert "inverse" in capsys.readouterr().out


class TestUpdate:
    def test_update_edge_list(self, edges_file, tmp_path, capsys):
        diff = tmp_path / "diff.txt"
        diff.write_text("+ d e\n- a b\n")
        assert main(["update", edges_file, str(diff)]) == 0
        assert "maintenance passes" in capsys.readouterr().out

    def test_update_saved_index_in_place(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "closure.json")
        main(["build", edges_file, "-o", target])
        diff = tmp_path / "diff.txt"
        diff.write_text("+ d epsilon\n")
        capsys.readouterr()
        assert main(["update", target, str(diff)]) == 0
        capsys.readouterr()
        assert main(["query", target, "a", "epsilon"]) == 0

    def test_update_to_new_output(self, edges_file, tmp_path, capsys):
        diff = tmp_path / "diff.txt"
        diff.write_text("+ a z\n")
        out = str(tmp_path / "updated.json")
        assert main(["update", edges_file, str(diff), "-o", out]) == 0
        capsys.readouterr()
        assert main(["query", out, "a", "z"]) == 0

    def test_malformed_diff(self, edges_file, tmp_path, capsys):
        diff = tmp_path / "diff.txt"
        diff.write_text("~ bogus line\n")
        assert main(["update", edges_file, str(diff)]) == 2
        assert "error" in capsys.readouterr().err


class TestExplainAndProfile:
    def test_explain_positive(self, edges_file, capsys):
        assert main(["explain", edges_file, "a", "d"]) == 0
        assert "reaches" in capsys.readouterr().out

    def test_explain_negative(self, edges_file, capsys):
        assert main(["explain", edges_file, "d", "a"]) == 0
        assert "does NOT reach" in capsys.readouterr().out

    def test_describe(self, edges_file, capsys):
        assert main(["describe", edges_file]) == 0
        out = capsys.readouterr().out
        assert "tree cover:" in out and "intervals:" in out

    def test_describe_no_tree(self, edges_file, capsys):
        assert main(["describe", edges_file, "--no-tree"]) == 0
        assert "tree cover:" not in capsys.readouterr().out

    def test_describe_saved_index(self, edges_file, tmp_path, capsys):
        target = str(tmp_path / "closure.json")
        main(["build", edges_file, "-o", target])
        capsys.readouterr()
        assert main(["describe", target]) == 0
        assert "IntervalTCIndex over" in capsys.readouterr().out

    def test_profile(self, edges_file, capsys):
        assert main(["profile", edges_file]) == 0
        out = capsys.readouterr().out
        assert "depth" in out and "reachable_pairs" in out


class TestBench:
    @pytest.mark.parametrize("figure,needle", [
        ("fig3.9", "storage vs degree"),
        ("fig3.11", "fig3.11"),
        ("worst-case", "fig3.6/3.7"),
        ("chains", "Theorem 2"),
        ("ablation", "policies"),
        ("workloads", "families"),
    ])
    def test_small_bench_runs(self, figure, needle, capsys):
        assert main(["bench", figure, "--nodes", "60", "--max-degree", "4",
                     "--sample", "50"]) == 0
        assert needle in capsys.readouterr().out

    def test_fig_3_12_histogram(self, capsys):
        assert main(["bench", "fig3.12", "--sample", "40"]) == 0
        assert "#" in capsys.readouterr().out

    def test_fig_3_10_includes_inverse(self, capsys):
        assert main(["bench", "fig3.10", "--nodes", "50",
                     "--max-degree", "3"]) == 0
        assert "inverse" in capsys.readouterr().out

    def test_bench_io(self, capsys):
        assert main(["bench", "io"]) == 0
        assert "page_faults" in capsys.readouterr().out

    def test_bench_merging(self, capsys):
        assert main(["bench", "merging"]) == 0
        assert "saving_percent" in capsys.readouterr().out
