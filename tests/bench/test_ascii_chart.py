"""Tests for the ASCII line-chart renderer."""

import pytest

from repro.bench.report import ascii_chart


def plotted(chart: str, marker: str = "*") -> int:
    """Count markers inside the plot area (legend and labels excluded)."""
    return sum(line.split("|", 1)[1].count(marker)
               for line in chart.splitlines() if "|" in line)

ROWS = [
    {"x": 1, "up": 1.0, "down": 100.0},
    {"x": 2, "up": 10.0, "down": 10.0},
    {"x": 3, "up": 100.0, "down": 1.0},
]


class TestBasics:
    def test_contains_axis_and_legend(self):
        chart = ascii_chart(ROWS, "x", ["up", "down"])
        assert "* up" in chart and "o down" in chart
        assert "x ->" in chart
        assert "+---" in chart

    def test_title(self):
        assert ascii_chart(ROWS, "x", ["up"], title="T").startswith("T")

    def test_extreme_labels(self):
        chart = ascii_chart(ROWS, "x", ["up"])
        assert "100" in chart and "1" in chart

    def test_markers_placed(self):
        chart = ascii_chart(ROWS, "x", ["up"], width=20, height=6)
        assert plotted(chart) == 3

    def test_crossing_series(self):
        # 'up' rises, 'down' falls: the top row must contain both a start
        # and an end marker across the two series.
        chart = ascii_chart(ROWS, "x", ["up", "down"], width=30, height=8)
        lines = [line for line in chart.splitlines() if "|" in line]
        top = lines[0].split("|", 1)[1]
        assert "*" in top or "o" in top

    def test_log_scale(self):
        linear = ascii_chart(ROWS, "x", ["up"], width=20, height=8)
        logged = ascii_chart(ROWS, "x", ["up"], width=20, height=8, log_y=True)
        assert linear != logged
        assert plotted(logged) == 3


class TestDegenerateInputs:
    def test_empty(self):
        assert ascii_chart([], "x", ["up"]) == "(no numeric data)"

    def test_non_numeric_cells_skipped(self):
        rows = [{"x": 1, "y": "n/a"}, {"x": 2, "y": 5.0}]
        chart = ascii_chart(rows, "x", ["y"])
        assert plotted(chart) == 1

    def test_flat_series(self):
        rows = [{"x": 1, "y": 3.0}, {"x": 2, "y": 3.0}]
        chart = ascii_chart(rows, "x", ["y"])
        assert plotted(chart) == 2

    def test_single_point(self):
        chart = ascii_chart([{"x": 1, "y": 2.0}], "x", ["y"])
        assert plotted(chart) == 1

    def test_log_scale_skips_nonpositive(self):
        rows = [{"x": 1, "y": 0.0}, {"x": 2, "y": 10.0}]
        chart = ascii_chart(rows, "x", ["y"], log_y=True)
        assert plotted(chart) == 1
