"""Sanity tests for the experiment drivers (tiny scales)."""

import pytest

from repro.bench.experiments import (
    chain_comparison,
    interval_census,
    io_traffic,
    merging_benefit,
    query_effort,
    storage_vs_degree,
    storage_vs_size,
    tree_cover_ablation,
    update_cost,
    worst_case_bipartite,
)


class TestStorageVsDegree:
    def test_row_shape(self):
        rows = storage_vs_degree(60, (1, 2, 3), seed=7)
        assert [row["degree"] for row in rows] == [1, 2, 3]
        for row in rows:
            assert row["relation"] == 60 * row["degree"]
            assert row["compressed_multiple"] == pytest.approx(
                row["compressed"] / row["relation"], rel=1e-6)

    def test_inverse_included_on_request(self):
        rows = storage_vs_degree(40, (2,), seed=7, include_inverse=True)
        assert "inverse" in rows[0] and "inverse_multiple" in rows[0]

    def test_trials_average(self):
        one = storage_vs_degree(40, (2,), seed=7, trials=1)
        many = storage_vs_degree(40, (2,), seed=7, trials=3)
        assert one[0]["relation"] == many[0]["relation"] == 80


class TestStorageVsSize:
    def test_row_shape(self):
        rows = storage_vs_size((30, 60), degree=2, seed=7)
        assert [row["nodes"] for row in rows] == [30, 60]

    def test_local_workload(self):
        rows = storage_vs_size((50, 100), degree=2, seed=7, workload="local")
        assert all(row["compressed"] <= row["full_closure"] for row in rows)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            storage_vs_size((30,), workload="martian")


class TestCensus:
    def test_exhaustive_n3(self):
        histogram = interval_census(3, sample=None)
        assert sum(histogram.values()) == 8
        assert min(histogram) >= 3          # at least one interval per node

    def test_sampled(self):
        histogram = interval_census(6, sample=30, seed=1)
        assert sum(histogram.values()) == 30


class TestOtherDrivers:
    def test_merging_rows(self):
        rows = merging_benefit((40,), (2,), seed=7)
        assert rows[0]["merged_intervals"] <= rows[0]["intervals"]
        assert 0 <= rows[0]["saving_percent"] <= 100

    def test_worst_case_rows(self):
        direct, hubbed = worst_case_bipartite(4, 5)
        assert direct["intervals"] > hubbed["intervals"]

    def test_chain_rows(self):
        rows = chain_comparison((25,), (2,), seed=7)
        assert rows[0]["intervals"] <= rows[0]["chain_entries_optimal"]

    def test_ablation_rows(self):
        rows = tree_cover_ablation((30,), (2,), seed=7)
        for row in rows:
            assert row["alg1"] <= row["min_pred"]

    def test_update_cost_rows(self):
        rows = update_cost(60, 2, batch=8, seed=7)
        assert len(rows) == 2
        assert all(row["incremental_s"] >= 0 for row in rows)

    def test_query_effort_rows(self):
        (row,) = query_effort(60, 2, queries=40, seed=7)
        assert row["queries"] == 40
        assert 0 <= row["positive_fraction"] <= 1

    def test_io_rows(self):
        full_row, compressed_row = io_traffic(50, 2, queries=60, seed=7)
        assert full_row["layout"] == "full closure"
        assert compressed_row["pages"] <= full_row["pages"]
