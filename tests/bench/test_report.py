"""Tests for the text-report renderer."""

from repro.bench.report import (
    format_histogram,
    format_table,
    print_report,
    summarize_series,
)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 200, "b": "z"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "200" in lines[3]
        # Every body line is as wide as the header line.
        assert len(set(map(len, lines))) <= 2

    def test_title(self):
        assert format_table([{"x": 1}], title="hello").startswith("hello")

    def test_float_formatting(self):
        text = format_table([{"value": 3.14159}])
        assert "3.142" in text

    def test_explicit_columns_and_missing_cells(self):
        text = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in text

    def test_empty_rows(self):
        assert format_table([], columns=["a"]) .startswith("a")

    def test_print_report(self, capsys):
        print_report([{"k": 1}], title="t")
        out = capsys.readouterr().out
        assert "t" in out and "k" in out


class TestHistogram:
    def test_bars_scale(self):
        text = format_histogram({1: 10, 2: 5}, bar_width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_sorted_keys(self):
        text = format_histogram({5: 1, 2: 1, 9: 1})
        keys = [line.split("|")[0].strip() for line in text.splitlines()]
        assert keys == ["2", "5", "9"]

    def test_empty(self):
        assert "(empty)" in format_histogram({})

    def test_title(self):
        assert format_histogram({1: 1}, title="census").startswith("census")


class TestSummaries:
    def test_direction_detection(self):
        rows = [{"x": 1, "up": 1.0, "down": 9.0},
                {"x": 2, "up": 2.0, "down": 3.0}]
        lines = summarize_series(rows, "x", ["up", "down"])
        assert any("rising" in line for line in lines)
        assert any("falling" in line for line in lines)

    def test_short_series_skipped(self):
        assert summarize_series([{"x": 1, "y": 2.0}], "x", ["y"]) == []
