"""Tests for the workload registry and the cross-family experiment."""

import pytest

from repro.bench.experiments import compression_by_workload
from repro.bench.workloads import WORKLOADS, make_workload, workload_names
from repro.errors import ReproError
from repro.graph.traversal import is_acyclic


class TestRegistry:
    def test_names_sorted_and_complete(self):
        names = workload_names()
        assert names == sorted(names)
        assert set(names) == set(WORKLOADS)
        assert {"uniform", "local", "tree", "hierarchy", "bipartite"} <= set(names)

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_workload("martian", 10)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_family_builds_acyclic(self, name):
        graph = make_workload(name, 60, 2.0, seed=3)
        assert graph.num_nodes > 0
        assert is_acyclic(graph)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_by_seed(self, name):
        first = make_workload(name, 40, 2.0, seed=5)
        second = make_workload(name, 40, 2.0, seed=5)
        assert first == second

    def test_descriptions_exist(self):
        assert all(workload.description for workload in WORKLOADS.values())


class TestCompressionByWorkload:
    def test_rows_cover_requested_names(self):
        rows = compression_by_workload(50, 2.0, names=["tree", "uniform"])
        assert [row["workload"] for row in rows] == ["tree", "uniform"]

    def test_tree_bound(self):
        (row,) = compression_by_workload(80, 2.0, names=["tree"])
        assert row["units_per_node"] == pytest.approx(2.0)
        assert row["intervals"] == row["nodes"]

    def test_all_rows_have_metrics(self):
        rows = compression_by_workload(40, 2.0, names=["uniform", "grid"])
        for row in rows:
            for key in ("depth", "width", "closure_pairs", "compression"):
                assert key in row
