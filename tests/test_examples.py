"""Integration smoke tests: every example script runs green end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_verification():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "verified against pointer-chasing ground truth" in completed.stdout
