"""Frozen flat-array engine vs the mutable dict engine.

The dict engine answers ``reachable`` in ~1µs — a hash lookup plus a
bisect over a small interval set — so the frozen engine has to win on
*batch* shapes: :meth:`FrozenTCIndex.reachable_many` answers 10k pairs
with one vectorised ``searchsorted`` over rank-keyed CSR buffers, and
:meth:`FrozenTCIndex.predecessors` replaces the dict engine's
scan-every-node loop with a reverse-interval-index stab.

Run as a script to (re)generate ``BENCH_frozen.json`` at the repo root::

    $ python benchmarks/bench_frozen.py            # paper scale (20k nodes)
    $ python benchmarks/bench_frozen.py --smoke    # CI-sized sanity run

The script verifies — inside the timed harness, on the exact same
inputs — that the frozen answers are identical to the dict engine's
before any speedup is reported.  The pytest wrappers below run the same
harness at smoke scale against a throwaway output path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from random import Random
from typing import Callable, List, Optional

from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_frozen.json"


def _best_of(repeats: int, workload: Callable[[], object]) -> float:
    """Wall-clock of the fastest of ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


def run_benchmark(*, nodes: int, degree: float, pairs: int, pred_sample: int,
                  repeats: int, seed: int,
                  backend: Optional[str] = None) -> dict:
    """Build the Fig 3.9-style graph, time both engines, verify parity."""
    rng = Random(seed)
    graph = random_dag(nodes, degree, seed)
    build_started = time.perf_counter()
    index = IntervalTCIndex.build(graph)
    build_seconds = time.perf_counter() - build_started

    freeze_started = time.perf_counter()
    frozen = index.freeze(backend=backend)
    freeze_seconds = time.perf_counter() - freeze_started

    node_list = list(graph.nodes())
    query_pairs = [(rng.choice(node_list), rng.choice(node_list))
                   for _ in range(pairs)]
    sample = rng.sample(node_list, min(pred_sample, len(node_list)))

    # --- reachable_many: 10k random pairs, one batch call -------------
    dict_answers = [index.reachable(u, v) for u, v in query_pairs]
    frozen_answers = frozen.reachable_many(query_pairs)
    if frozen_answers != dict_answers:
        raise AssertionError("frozen reachable_many disagrees with dict engine")
    dict_pairs_seconds = _best_of(
        repeats, lambda: [index.reachable(u, v) for u, v in query_pairs])
    frozen_pairs_seconds = _best_of(
        repeats, lambda: frozen.reachable_many(query_pairs))

    # --- predecessors: reverse-index stab vs scan-every-node ----------
    for node in sample:
        if frozen.predecessors(node) != index.predecessors(node):
            raise AssertionError(
                "frozen predecessors disagrees with dict engine")
    dict_preds_seconds = _best_of(
        repeats, lambda: [index.predecessors(node) for node in sample])
    frozen_preds_seconds = _best_of(
        repeats, lambda: [frozen.predecessors(node) for node in sample])

    # --- observability: enabled-registry overhead + latency digests ---
    # The baseline timings above ran with no registry attached (the
    # disabled fast path).  Re-time the batch workload with a live
    # registry recording every call, then report the histogram
    # percentiles the registry collected along the way.
    from repro.obs import MetricsRegistry, attach

    registry = MetricsRegistry()
    attach(frozen, metrics=registry)
    point_sample = query_pairs[:min(1000, len(query_pairs))]
    for source, destination in point_sample:
        frozen.reachable(source, destination)
    instrumented_pairs_seconds = _best_of(
        repeats, lambda: frozen.reachable_many(query_pairs))
    overhead_pct = (
        instrumented_pairs_seconds / frozen_pairs_seconds - 1.0) * 100.0
    frozen._obs = None  # detach: later callers see the baseline engine

    def digest(op: str) -> dict:
        histogram = registry.histogram(
            "tc_op_latency_seconds",
            labels={"engine": "FrozenTCIndex", "op": op})
        summary = histogram.summary()
        return {
            "count": summary["count"],
            "p50_seconds": round(histogram.percentile(50), 9),
            "p90_seconds": round(histogram.percentile(90), 9),
            "p99_seconds": round(histogram.percentile(99), 9),
        }

    observability = {
        "instrumented_pairs_seconds": round(instrumented_pairs_seconds, 6),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "latency_histograms": {
            "reachable": digest("reachable"),
            "reachable_many": digest("reachable_many"),
        },
    }

    return {
        "meta": {
            "nodes": nodes,
            "degree": degree,
            "arcs": graph.num_arcs,
            "intervals": frozen.num_intervals,
            "backend": frozen.backend,
            "seed": seed,
            "repeats": repeats,
            "build_seconds": round(build_seconds, 6),
            "freeze_seconds": round(freeze_seconds, 6),
            "frozen_nbytes": frozen.nbytes,
        },
        "workloads": {
            "reachable_many": {
                "pairs": pairs,
                "hits": sum(dict_answers),
                "dict_seconds": round(dict_pairs_seconds, 6),
                "frozen_seconds": round(frozen_pairs_seconds, 6),
                "speedup": round(dict_pairs_seconds / frozen_pairs_seconds, 2),
                "verified_identical": True,
            },
            "predecessors": {
                "sampled_nodes": len(sample),
                "dict_seconds": round(dict_preds_seconds, 6),
                "frozen_seconds": round(frozen_preds_seconds, 6),
                "speedup": round(dict_preds_seconds / frozen_preds_seconds, 2),
                "verified_identical": True,
            },
        },
        "observability": observability,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="frozen engine vs dict engine on a Fig 3.9-style DAG")
    parser.add_argument("--nodes", type=int, default=20000)
    parser.add_argument("--degree", type=float, default=2.0)
    parser.add_argument("--pairs", type=int, default=10000)
    parser.add_argument("--pred-sample", type=int, default=50,
                        help="nodes sampled for the predecessors workload")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats")
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--backend", choices=("numpy", "array"), default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI (overrides --nodes/--pairs)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 2000)
        args.pairs = min(args.pairs, 2000)
        args.repeats = min(args.repeats, 3)

    result = run_benchmark(nodes=args.nodes, degree=args.degree,
                           pairs=args.pairs, pred_sample=args.pred_sample,
                           repeats=args.repeats, seed=args.seed,
                           backend=args.backend)
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest wrappers (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_frozen_beats_dict_on_batches(tmp_path):
    """Smoke-scale run of the full harness, parity checked inside."""
    result = run_benchmark(nodes=1500, degree=2.0, pairs=2000,
                           pred_sample=25, repeats=3, seed=1989)
    (tmp_path / "BENCH_frozen.json").write_text(json.dumps(result))
    workloads = result["workloads"]
    assert workloads["reachable_many"]["verified_identical"]
    assert workloads["predecessors"]["verified_identical"]
    # Predecessors via the reverse index wins big at any scale; the
    # batch-pairs margin is asserted loosely here (the full bar is
    # enforced on the committed 20k-node BENCH_frozen.json).
    assert workloads["predecessors"]["speedup"] > 3.0
    assert workloads["reachable_many"]["speedup"] > 1.0
    # Instrumentation cost on the batch path: one timer per call, not
    # per pair.  The acceptance bar is <= 5% at the committed 20k-node
    # scale; at smoke scale a single batch call is short enough that
    # timing jitter dominates, so the bound here is looser.
    observability = result["observability"]
    assert observability["enabled_overhead_pct"] < 50.0
    digest = observability["latency_histograms"]
    assert digest["reachable"]["count"] >= 1000
    assert digest["reachable_many"]["count"] >= 1
    assert digest["reachable"]["p50_seconds"] <= digest["reachable"]["p99_seconds"]


def test_array_backend_parity():
    """The stdlib-array fallback produces identical answers too."""
    result = run_benchmark(nodes=600, degree=2.0, pairs=500,
                           pred_sample=10, repeats=1, seed=7,
                           backend="array")
    assert result["meta"]["backend"] == "array"
    assert result["workloads"]["reachable_many"]["verified_identical"]


if __name__ == "__main__":
    sys.exit(main())
