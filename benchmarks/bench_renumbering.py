"""Extension experiment — the three answers to "what if numbers run out?".

Section 4.1 offers integer renumbering (we implement both the global
re-stride and the paper's local shift-to-first-hole) and, in a footnote,
real-number labels that never exhaust.  This benchmark drives a hostile
insertion workload — repeated inserts under one already-full parent at
stride 1/2 — and compares total cost and label churn across the three
strategies.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_table
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag


def _hostile_stream(index, inserts: int) -> int:
    """Alternate deep/wide inserts under the same initially-full leaf."""
    leaf = next(node for node in index.graph
                if index.graph.out_degree(node) == 0)
    parent = leaf
    for step in range(inserts):
        index.add_node(("h", step), parents=[parent])
        parent = ("h", step) if step % 2 else leaf
    return index.num_intervals


def _label_churn(index, inserts: int) -> int:
    """How many pre-existing postorder labels changed during the stream."""
    before = dict(index.postorder)
    _hostile_stream(index, inserts)
    return sum(1 for node, number in before.items()
               if index.postorder[node] != number)


@pytest.fixture(scope="module")
def churn_rows(scale):
    inserts = scale["update_batch"]
    rows = []
    for name, kwargs in [
        ("global renumber, gap=1", dict(gap=1, renumber_strategy="global")),
        ("local shift, gap=1", dict(gap=1, renumber_strategy="local")),
        ("fractional, gap=2", dict(gap=2, numbering="fractional")),
        ("global renumber, gap=32", dict(gap=32, renumber_strategy="global")),
    ]:
        index = IntervalTCIndex.build(random_dag(200, 2, 1989), **kwargs)
        churn = _label_churn(index, inserts)
        index.verify()
        rows.append({"strategy": name, "inserts": inserts,
                     "labels_changed": churn,
                     "final_intervals": index.num_intervals})
    return rows


def test_label_churn_ordering(churn_rows):
    record_result(
        "renumbering",
        format_table(churn_rows,
                     title="Renumbering strategies under a hostile insert stream"),
    )
    by_name = {row["strategy"]: row for row in churn_rows}
    # Fractional numbering never touches an existing label.
    assert by_name["fractional, gap=2"]["labels_changed"] == 0
    # The local shift never disturbs more labels than a global renumber.
    # (Under maximally dense gap-1 packing the nearest hole sits beyond the
    # maximum, so the two converge; with any slack the local shift wins big.)
    assert by_name["local shift, gap=1"]["labels_changed"] <= \
        by_name["global renumber, gap=1"]["labels_changed"]
    # All strategies produce the same closure.
    final_counts = {row["final_intervals"] for row in churn_rows}
    assert len(final_counts) == 1


def test_all_strategies_stay_exact(churn_rows):
    """verify() ran inside the fixture for every strategy; spot-check counts."""
    for row in churn_rows:
        assert row["final_intervals"] > 0


@pytest.mark.parametrize("kwargs,label", [
    (dict(gap=1, renumber_strategy="global"), "global-gap1"),
    (dict(gap=1, renumber_strategy="local"), "local-gap1"),
    (dict(gap=2, numbering="fractional"), "fractional"),
    (dict(gap=32, renumber_strategy="global"), "global-gap32"),
])
def test_insert_stream_kernel(benchmark, kwargs, label, scale):
    """Timing kernel: the hostile stream under each strategy."""
    base = random_dag(200, 2, 1989)

    def run() -> int:
        index = IntervalTCIndex.build(base.copy(), **kwargs)
        return _hostile_stream(index, scale["update_batch"])

    total = benchmark(run)
    assert total > 0
