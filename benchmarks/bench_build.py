"""Million-node raw speed: vectorized builds and O(1) binary cold starts.

Two claims gate this benchmark (``BENCH_build.json`` at the repo root):

* **Build**: the vectorized interval-propagation kernel
  (:mod:`repro.core.propagation`) beats the sequential reference pass by
  >= 2x at 100k nodes — and the two label tables are *identical*, which
  is asserted here by comparing the deterministic RTCF serialisations
  byte for byte before any speedup is reported.
* **Cold load**: reopening the closure through the RTCF container
  (``mmap`` + ``frombuffer``) beats re-parsing the JSON frozen document
  by >= 10x at 100k nodes, and the first query after an RTCF open lands
  in microseconds because nothing is deserialised up front.

Run as a script to (re)generate ``BENCH_build.json``::

    $ python benchmarks/bench_build.py            # 100k + 1M nodes
    $ python benchmarks/bench_build.py --smoke    # CI-sized sanity run

The propagation pass is timed in isolation (tree cover and postorder
numbering are shared, identical work for both modes), which is the
comparison the vectorized kernel actually changes; whole-build wall
time for the vectorized path is reported alongside for context.  The
default workload uses the O(n) ``first_parent`` tree-cover policy —
``alg1``'s exact predecessor counting keeps O(n^2)-bit ancestor masks
and is infeasible at these scales — and the cover policy is orthogonal
to the propagation comparison because both modes consume the same
cover.  Query parity between the JSON- and RTCF-loaded views is
checked on every scale.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from random import Random
from typing import Callable, List, Optional

from repro.core.index import IntervalTCIndex
from repro.core.labeling import assign_postorder
from repro.core.propagation import run_propagation
from repro.core.rtcf import load_rtcf, rtcf_bytes
from repro.core.serialize import _load_frozen_index, save_frozen_index
from repro.core.tree_cover import build_tree_cover
from repro.graph.generators import random_dag

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_build.json"

#: Sequential propagation above this node count is skipped (minutes of
#: pure-Python runtime); the skip is recorded in the output rather than
#: silently narrowing the matrix.
PYTHON_BUILD_CEILING = 1_000_000


def _best_of(repeats: int, workload: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


def _timed(workload: Callable[[], object]):
    started = time.perf_counter()
    result = workload()
    return result, time.perf_counter() - started


def run_scale(*, nodes: int, degree: float, seed: int, pairs: int,
              repeats: int, workdir: str, policy: str = "first_parent",
              gap: int = 32) -> dict:
    """Build, serialise, and cold-load one graph scale; verify parity."""
    rng = Random(seed)
    graph = random_dag(nodes, degree, seed)

    # Shared pipeline stages: identical inputs for both propagation
    # modes, so the cover policy cannot confound the comparison.
    cover, cover_seconds = _timed(
        lambda: build_tree_cover(graph, policy=policy))
    _, numbering_seconds = _timed(lambda: assign_postorder(cover, gap))

    propagation: dict = {}
    run_python = nodes <= PYTHON_BUILD_CEILING
    python_rtcf = None
    if run_python:
        python_labeling = assign_postorder(cover, gap)
        _, python_seconds = _timed(
            lambda: run_propagation(graph, cover, python_labeling, "python"))
        propagation["python_seconds"] = round(python_seconds, 6)
        # Serialise the sequential result now and drop its millions of
        # live objects *before* timing the vectorized pass — carrying
        # them across would tax the second pass with the first one's
        # garbage-collector pressure.
        python_index = IntervalTCIndex(graph, cover, python_labeling,
                                       policy=policy)
        python_rtcf = rtcf_bytes(python_index.freeze())
        del python_index, python_labeling
    else:
        propagation["python"] = {
            "skipped": f"sequential propagation above {PYTHON_BUILD_CEILING} "
                       f"nodes takes many minutes; vectorized-only here"}
    gc.collect()
    vector_labeling = assign_postorder(cover, gap)
    _, vector_seconds = _timed(
        lambda: run_propagation(graph, cover, vector_labeling, "vectorized"))
    propagation["vectorized_seconds"] = round(vector_seconds, 6)

    build_started = time.perf_counter()
    vector_index = IntervalTCIndex(graph, cover, vector_labeling,
                                   policy=policy)
    frozen, freeze_seconds = _timed(vector_index.freeze)
    total_build = time.perf_counter() - build_started

    if python_rtcf is not None:
        # Identical output is the precondition for quoting any speedup:
        # the RTCF writer is deterministic, so byte equality of the two
        # serialised engines proves label-table equality.
        if rtcf_bytes(frozen) != python_rtcf:
            raise AssertionError(
                "vectorized propagation diverged from the sequential pass")
        propagation["speedup"] = round(python_seconds / vector_seconds, 2)
        propagation["verified_identical"] = True

    builds = {
        "policy": policy,
        "gap": gap,
        "tree_cover_seconds": round(cover_seconds, 6),
        "numbering_seconds": round(numbering_seconds, 6),
        "propagation": propagation,
        "vectorized_total_seconds": round(
            cover_seconds + numbering_seconds + vector_seconds
            + total_build, 6),
    }

    json_path = os.path.join(workdir, "closure.json")
    rtcf_path = os.path.join(workdir, "closure.rtcf")
    _, json_save_seconds = _timed(
        lambda: save_frozen_index(frozen, json_path, format="json"))
    _, rtcf_save_seconds = _timed(
        lambda: save_frozen_index(frozen, rtcf_path, format="rtcf"))

    json_load_seconds = _best_of(
        repeats, lambda: _load_frozen_index(json_path))
    rtcf_load_seconds = _best_of(repeats, lambda: load_rtcf(rtcf_path))

    # First-query latency from a cold open: everything between "the file
    # is on disk" and "the first reachability answer is in hand".
    node_list = list(graph.nodes())
    probe = (rng.choice(node_list), rng.choice(node_list))
    json_first_query = _best_of(
        repeats,
        lambda: _load_frozen_index(json_path).reachable(*probe))
    rtcf_first_query = _best_of(
        repeats, lambda: load_rtcf(rtcf_path).reachable(*probe))

    # Parity: both cold-loaded views answer a random batch identically.
    sample = [(rng.choice(node_list), rng.choice(node_list))
              for _ in range(pairs)]
    json_view = _load_frozen_index(json_path)
    rtcf_view = load_rtcf(rtcf_path, verify=True)
    json_answers = json_view.reachable_many(sample)
    if rtcf_view.reachable_many(sample) != json_answers:
        raise AssertionError("RTCF view disagrees with the JSON view")

    return {
        "nodes": nodes,
        "arcs": graph.num_arcs,
        "intervals": frozen.num_intervals,
        "seed": seed,
        "degree": degree,
        "build": builds,
        "freeze_seconds": round(freeze_seconds, 6),
        "save": {
            "json_seconds": round(json_save_seconds, 6),
            "rtcf_seconds": round(rtcf_save_seconds, 6),
            "json_bytes": os.path.getsize(json_path),
            "rtcf_bytes": os.path.getsize(rtcf_path),
        },
        "cold_load": {
            "repeats": repeats,
            "json_seconds": round(json_load_seconds, 6),
            "rtcf_seconds": round(rtcf_load_seconds, 6),
            "speedup": round(json_load_seconds / rtcf_load_seconds, 2),
            "json_first_query_seconds": round(json_first_query, 6),
            "rtcf_first_query_seconds": round(rtcf_first_query, 6),
            "first_query_speedup": round(
                json_first_query / rtcf_first_query, 2),
            "verified_identical": True,
            "verified_pairs": pairs,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="build + cold-start timings: vectorized propagation "
                    "and the RTCF zero-copy container")
    parser.add_argument("--scales", type=int, nargs="+",
                        default=[100_000, 1_000_000])
    parser.add_argument("--degree", type=float, default=3.0)
    parser.add_argument("--policy", default="first_parent",
                        help="tree-cover policy (alg1 is O(n^2)-bit at "
                             "scale; first_parent is the O(n) default)")
    parser.add_argument("--gap", type=int, default=32)
    parser.add_argument("--pairs", type=int, default=2000,
                        help="random pairs for the parity batch")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats for loads")
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI (overrides --scales)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.smoke:
        args.scales = [2000]
        args.pairs = min(args.pairs, 500)

    scales = []
    for nodes in args.scales:
        with tempfile.TemporaryDirectory(prefix="bench-build-") as workdir:
            scales.append(run_scale(
                nodes=nodes, degree=args.degree, seed=args.seed,
                pairs=args.pairs, repeats=args.repeats, workdir=workdir,
                policy=args.policy, gap=args.gap))

    result = {
        "meta": {
            "degree": args.degree,
            "policy": args.policy,
            "gap": args.gap,
            "repeats": args.repeats,
            "seed": args.seed,
            "python_build_ceiling": PYTHON_BUILD_CEILING,
        },
        "scales": scales,
    }
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest wrappers (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_bench_build_smoke(tmp_path):
    """Smoke-scale run: parity enforced inside, speedups sane."""
    result = run_scale(nodes=1500, degree=2.0, seed=1989, pairs=400,
                       repeats=2, workdir=str(tmp_path))
    assert result["build"]["propagation"]["verified_identical"]
    assert result["cold_load"]["verified_identical"]
    # The >= 10x cold-load and >= 2x propagation bars are enforced on
    # the committed 100k-node BENCH_build.json; at smoke scale fixed
    # per-call costs dominate, so only direction is asserted here.
    assert result["cold_load"]["speedup"] > 1.0
    assert result["save"]["rtcf_bytes"] > 0


def test_committed_results_meet_the_bars():
    """The committed BENCH_build.json must back the README's claims."""
    if not DEFAULT_OUTPUT.exists():
        import pytest
        pytest.skip("BENCH_build.json not generated yet")
    document = json.loads(DEFAULT_OUTPUT.read_text())
    big = [scale for scale in document["scales"]
           if scale["nodes"] >= 100_000]
    assert big, "committed results lack a >=100k-node scale"
    for scale in big:
        assert scale["cold_load"]["verified_identical"]
        assert scale["cold_load"]["speedup"] >= 10.0
        propagation = scale["build"]["propagation"]
        if "speedup" in propagation:
            assert propagation["verified_identical"]
    # The >=2x propagation bar is claimed "at >=100k nodes": at least
    # one committed big scale must clear it with verified parity.  (At
    # 1M nodes per-node interval counts grow and the sequential pass's
    # merge-friendly sorts claw back ground — that honest number stays
    # in the file without being the headline.)
    assert any(
        scale["build"]["propagation"].get("speedup", 0) >= 2.0
        and scale["build"]["propagation"]["verified_identical"]
        for scale in big), "no >=100k scale clears the 2x propagation bar"


if __name__ == "__main__":
    sys.exit(main())
