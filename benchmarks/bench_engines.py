"""Head-to-head engine benchmark behind ``open_index(engine="auto")``.

Four graph shapes — the regimes the ``engine="auto"`` decision rule in
:mod:`repro.core.select` must tell apart — against the four from-graph
engine families:

=================  =====================================================
shape              why it is in the matrix
=================  =====================================================
``deep_chain``     a single path: the best case for chain-cover labels
                   (one chain, one dict probe per query)
``bushy``          an IS-A hierarchy (Section 2.1 workload,
                   ``random_hierarchy``): moderate depth, overlapping
                   parents — the paper's home turf
``bipartite``      Figure 3.6's worst case: depth 1, Θ(n²/4) closure in
                   every scheme — constants decide
``sparse_dag``     a low-degree random DAG (``first_parent`` regime):
                   shallow, fragmented chains
=================  =====================================================

Each cell builds the engine once and times a seeded mixed query load
(point ``reachable`` pairs + ``successors`` sweeps), emitting
``BENCH_engines.json``.  The pytest wrapper checks the *committed* file
still backs the auto-selection rule: :func:`repro.recommend_engine` must
name the measured-fastest engine (by total = build + query wall time) on
at least three of the four shapes.

Run ``python benchmarks/bench_engines.py`` for the full matrix or
``--smoke`` for the reduced CI scale.
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from pathlib import Path
from random import Random
from typing import Callable, Dict, List, Optional

from repro.core.chain_cover import ChainCoverIndex
from repro.core.hoplabel import HopLabelIndex
from repro.core.index import IntervalTCIndex
from repro.core.select import graph_stats, recommend_engine
from repro.graph.digraph import DiGraph
from repro.graph.generators import (bipartite_worst_case, path_graph,
                                    random_dag, random_hierarchy)

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engines.json"

#: The from-graph engine families `open_index` can pick between.
ENGINE_BUILDERS: Dict[str, Callable[[DiGraph], object]] = {
    "interval": lambda graph: IntervalTCIndex.build(graph),
    "frozen": lambda graph: IntervalTCIndex.build(graph).freeze().detach(),
    "hoplabel": HopLabelIndex.build,
    "chain": ChainCoverIndex.build,
}


def _shapes(scale: int) -> Dict[str, Callable[[], DiGraph]]:
    side = max(2, int(scale ** 0.5))
    return {
        "deep_chain": lambda: path_graph(scale),
        "bushy": lambda: random_hierarchy(scale, Random(1989)),
        "bipartite": lambda: bipartite_worst_case(side, side),
        "sparse_dag": lambda: random_dag(scale, 1.5, 1989),
    }


def _query_load(graph: DiGraph, pairs: int, sweeps: int):
    rng = Random(7)
    nodes = sorted(graph.nodes(), key=repr)
    return ([(rng.choice(nodes), rng.choice(nodes)) for _ in range(pairs)],
            rng.sample(nodes, min(sweeps, len(nodes))))


def run_cell(name: str, graph: DiGraph, pairs, sweeps) -> dict:
    builder = ENGINE_BUILDERS[name]
    gc.collect()
    started = time.perf_counter()
    engine = builder(graph)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    answers = [engine.reachable(s, d) for s, d in pairs]
    point_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sweep_sizes = [len(engine.successors(node)) for node in sweeps]
    sweep_seconds = time.perf_counter() - started

    storage = engine.stats()
    payload = storage.as_dict() if hasattr(storage, "as_dict") else storage
    return {
        "engine": name,
        "build_seconds": round(build_seconds, 6),
        "point_query_seconds": round(point_seconds, 6),
        "successor_sweep_seconds": round(sweep_seconds, 6),
        "total_seconds": round(
            build_seconds + point_seconds + sweep_seconds, 6),
        "reachable_fraction": round(sum(answers) / max(len(answers), 1), 4),
        "sweep_result_rows": sum(sweep_sizes),
        "storage_units": payload.get("storage_units",
                                     payload.get("nbytes")),
    }


def run_shape(shape: str, make_graph, *, pairs: int, sweeps: int) -> dict:
    graph = make_graph()
    stats = graph_stats(graph)
    recommended = recommend_engine(stats)
    pair_load, sweep_load = _query_load(graph, pairs, sweeps)
    cells = [run_cell(name, graph, pair_load, sweep_load)
             for name in ENGINE_BUILDERS]
    # Cross-engine parity on the sampled load: every cell must agree on
    # how many pairs were reachable and how many sweep rows came back.
    fractions = {cell["reachable_fraction"] for cell in cells}
    rows = {cell["sweep_result_rows"] for cell in cells}
    if len(fractions) != 1 or len(rows) != 1:
        raise AssertionError(
            f"engines diverged on shape {shape!r}: {cells}")
    fastest = min(cells, key=lambda cell: cell["total_seconds"])
    return {
        "shape": shape,
        "graph": stats.as_dict(),
        "recommended_engine": recommended,
        "fastest_engine": fastest["engine"],
        "auto_matches_fastest": recommended == fastest["engine"],
        "engines": cells,
    }


def run_matrix(scale: int, *, pairs: int, sweeps: int) -> dict:
    shapes = [run_shape(shape, make_graph, pairs=pairs, sweeps=sweeps)
              for shape, make_graph in _shapes(scale).items()]
    return {
        "meta": {"scale": scale, "pairs": pairs, "sweeps": sweeps,
                 "seed": 1989},
        "shapes": shapes,
        "auto_agreement": sum(
            1 for shape in shapes if shape["auto_matches_fastest"]),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="engine head-to-head: build + query wall time per "
                    "graph shape, backing the engine='auto' rule")
    parser.add_argument("--scale", type=int, default=20_000,
                        help="nodes per shape (bipartite uses sqrt per "
                             "side)")
    parser.add_argument("--pairs", type=int, default=2000,
                        help="random reachable() pairs per cell")
    parser.add_argument("--sweeps", type=int, default=200,
                        help="successors() sweeps per cell")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI (overrides --scale)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = 2000
        args.pairs = min(args.pairs, 400)
        args.sweeps = min(args.sweeps, 50)

    result = run_matrix(args.scale, pairs=args.pairs, sweeps=args.sweeps)
    if args.smoke:
        # Smoke runs validate the harness (parity, shape coverage), not
        # the committed numbers — don't overwrite the real matrix.
        print(json.dumps(result, indent=2))
        print("\nsmoke run: results not written")
        return 0
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest wrappers (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_bench_engines_smoke():
    """Reduced-scale matrix: all cells run, engines agree on answers."""
    result = run_matrix(1200, pairs=300, sweeps=40)
    assert len(result["shapes"]) == 4
    for shape in result["shapes"]:
        assert len(shape["engines"]) == len(ENGINE_BUILDERS)
        assert shape["recommended_engine"] in ENGINE_BUILDERS


def test_committed_results_back_the_auto_rule():
    """The committed BENCH_engines.json must justify recommend_engine.

    The acceptance bar: auto names the measured-fastest engine on at
    least 3 of the 4 shapes (the remaining shape may be a near-tie
    where the rule prefers the more flexible engine).
    """
    if not DEFAULT_OUTPUT.exists():
        import pytest
        pytest.skip("BENCH_engines.json not generated yet")
    document = json.loads(DEFAULT_OUTPUT.read_text())
    shapes = document["shapes"]
    assert len(shapes) >= 4
    assert all(len(shape["engines"]) >= 4 for shape in shapes)
    assert document["auto_agreement"] >= 3


if __name__ == "__main__":
    raise SystemExit(main())
