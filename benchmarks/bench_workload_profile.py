"""Extension experiment — compression profile across graph families.

Not a single paper figure, but the synthesis of its analysis sections:
trees cost exactly 2 units/node (Section 3.1), deep hierarchies stay near
that bound (the Lassie observation), bipartite worst cases blow up
quadratically (Figure 3.6), and the random families sit in between.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import compression_by_workload, format_table, make_workload
from repro.core.index import IntervalTCIndex


@pytest.fixture(scope="module")
def profile_rows(scale):
    nodes = max(100, scale["nodes"] // 4)
    return compression_by_workload(nodes, 2.0, seed=1989)


def test_profile_table(profile_rows):
    record_result(
        "workload_profile",
        format_table(profile_rows,
                     title="Compression profile across graph families"),
    )
    by_name = {row["workload"]: row for row in profile_rows}
    # Trees sit exactly at the 2-units-per-node bound.
    assert by_name["tree"]["units_per_node"] == pytest.approx(2.0)
    # Hierarchies stay a small constant above it (the paper's Lassie
    # claim), far from the quadratic bipartite regime.
    assert by_name["hierarchy"]["units_per_node"] < \
        by_name["bipartite"]["units_per_node"] / 3
    # The engineered bipartite worst case is by far the heaviest family.
    heaviest = max(profile_rows, key=lambda row: row["units_per_node"])
    assert heaviest["workload"] == "bipartite"


def test_depth_correlates_with_compression(profile_rows):
    """Deeper families compress better than the shallow bipartite one."""
    by_name = {row["workload"]: row for row in profile_rows}
    assert by_name["grid"]["compression"] > by_name["bipartite"]["compression"]
    assert by_name["local"]["compression"] > by_name["uniform"]["compression"]


def test_workload_build_kernel(benchmark, scale):
    """Timing kernel: index build on the hierarchy family."""
    graph = make_workload("hierarchy", max(100, scale["nodes"] // 4), 1.5, 1989)
    result = benchmark(lambda: IntervalTCIndex.build(graph, gap=1))
    assert result.num_intervals >= graph.num_nodes
