"""Shared infrastructure for the figure-regeneration benchmarks.

Every ``bench_*.py`` file regenerates one paper figure (or one extension
experiment): it computes the data series with :mod:`repro.bench`, asserts
the qualitative *shape* the paper reports (who wins, direction of trends,
crossovers), saves the printed table under ``benchmarks/results/``, and
times a representative kernel with pytest-benchmark.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``paper`` (default) — the paper's sizes (1000-node graphs, etc.);
* ``quick`` — reduced sizes for smoke runs.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> dict:
    """Experiment sizes for the selected scale."""
    if os.environ.get("REPRO_BENCH_SCALE", "paper") == "quick":
        return {
            "nodes": 200,
            "degrees": tuple(range(1, 8)),
            "extended_degrees": (1, 2, 4, 8, 12),
            "sizes": (50, 100, 200, 400),
            "census_samples": 2000,
            "queries": 500,
            "update_batch": 40,
        }
    return {
        "nodes": 1000,
        "degrees": tuple(range(1, 11)),
        "extended_degrees": (1, 2, 4, 8, 12, 16, 20, 30, 40),
        "sizes": (125, 250, 500, 1000, 2000),
        "census_samples": 20000,
        "queries": 2000,
        "update_batch": 100,
    }
