"""Sections 2.1/6 — closure queries: index lookup vs. pointer chasing.

"With the compressed closure, answering a transitive closure query in a
deductive database system reduces to a lookup instead of a graph
traversal" (Section 6).  This experiment quantifies that on random DAGs:
wall-clock per query and DFS work per query.
"""

from __future__ import annotations

import random

import pytest

from _utils import record_result
from repro.baselines import PointerChasingIndex
from repro.bench import format_table, query_effort
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag


@pytest.fixture(scope="module")
def effort_rows(scale):
    return query_effort(scale["nodes"], 3.0, queries=scale["queries"], seed=1989)


def test_lookup_beats_traversal(effort_rows):
    record_result(
        "query_speed",
        format_table(effort_rows,
                     title="Query effort: interval lookup vs pointer chasing"),
    )
    (row,) = effort_rows
    assert row["speedup"] > 2.0
    assert row["dfs_nodes_per_query"] > 1.0


@pytest.fixture(scope="module")
def query_setup(scale):
    graph = random_dag(scale["nodes"], 3, 1989)
    index = IntervalTCIndex.build(graph, gap=1)
    chaser = PointerChasingIndex.build(graph)
    rng = random.Random(3)
    nodes = list(graph.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(scale["queries"])]
    return index, chaser, pairs


def test_index_query_kernel(benchmark, query_setup):
    """Timing kernel: batched interval lookups."""
    index, _, pairs = query_setup
    hits = benchmark(lambda: sum(index.reachable(u, v) for u, v in pairs))
    assert 0 <= hits <= len(pairs)


def test_pointer_chasing_kernel(benchmark, query_setup):
    """Timing kernel: the same batch answered by DFS (the '1989 status quo')."""
    _, chaser, pairs = query_setup
    hits = benchmark(lambda: sum(chaser.reachable(u, v) for u, v in pairs))
    assert 0 <= hits <= len(pairs)


def test_successor_enumeration_kernel(benchmark, query_setup):
    """Timing kernel: decoding full successor sets from intervals."""
    index, _, pairs = query_setup
    sources = [u for u, _ in pairs[:200]]
    total = benchmark(lambda: sum(len(index.successors(u)) for u in sources))
    assert total >= len(sources)
