"""Figure 3.9 — storage for a 1000-node graph as a function of average degree.

Series: original relation (the 1.0 baseline), full transitive closure,
compressed closure; all plotted as multiples of the original relation.
Paper shape: the closure explodes by degree ~3-4 then flattens; the
compressed closure rises, peaks, then *falls* with degree, eventually
dropping below the original relation itself (checked here on an extended
degree sweep).
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import ascii_chart, format_table, storage_vs_degree
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag


@pytest.fixture(scope="module")
def degree_rows(scale):
    return storage_vs_degree(scale["nodes"], scale["degrees"], seed=1989)


def test_fig_3_9_shape(degree_rows, scale):
    """The paper's qualitative claims about the two curves."""
    record_result(
        "fig_3_9",
        format_table(degree_rows,
                     title=f"Figure 3.9: storage vs degree, n={scale['nodes']}")
        + "\n\n"
        + ascii_chart(degree_rows, "degree",
                      ["full_multiple", "compressed_multiple"],
                      title="Figure 3.9 (rendered): storage as a multiple of "
                            "the relation"),
    )
    by_degree = {row["degree"]: row for row in degree_rows}
    # Full closure grows explosively at low degree ...
    assert by_degree[3]["full_multiple"] > 2 * by_degree[1]["full_multiple"]
    # ... and the compressed closure stays below it from degree 2 on.
    for degree in scale["degrees"][1:]:
        assert by_degree[degree]["compressed"] < by_degree[degree]["full_closure"]
    # The compressed curve turns over: its peak is strictly inside the sweep.
    multiples = [row["compressed_multiple"] for row in degree_rows]
    peak_at = multiples.index(max(multiples))
    assert 0 < peak_at < len(multiples) - 1
    assert multiples[-1] < max(multiples)


def test_fig_3_9_crossover_below_relation(scale):
    """Extended sweep: the compressed closure dips below the relation itself."""
    rows = storage_vs_degree(scale["nodes"], scale["extended_degrees"], seed=1989)
    record_result(
        "fig_3_9_extended",
        format_table(rows, title="Figure 3.9 (extended degrees): compressed "
                                 "closure crosses below the original relation"),
    )
    assert rows[-1]["compressed_multiple"] < 1.0, (
        "compressed closure should end below the original relation at high degree"
    )


def test_build_kernel(benchmark, scale):
    """Timing kernel: one compressed-closure build at the figure's midpoint."""
    graph = random_dag(scale["nodes"], 4, 1989)
    result = benchmark(lambda: IntervalTCIndex.build(graph, gap=1))
    assert result.num_intervals >= scale["nodes"]
