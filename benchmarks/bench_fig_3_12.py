"""Figure 3.12 — frequency distribution of interval counts over 8-node DAGs.

The paper enumerates all 8-node DAGs and histograms the total number of
intervals in the compressed closure, "demonstrating the infrequency of
worst-case graphs".  Exhaustive enumeration over a fixed topological
order is 2^28 graphs, so we enumerate exhaustively at 5 nodes and sample
uniformly at 8 (see DESIGN.md).  Shape checks: the mass concentrates near
the n-interval tree bound and the quadratic worst case has (near-)zero
frequency.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_histogram, interval_census
from repro.core.index import IntervalTCIndex
from repro.graph.generators import sample_dags


@pytest.fixture(scope="module")
def census_8(scale):
    return interval_census(8, sample=scale["census_samples"], seed=1989)


def test_fig_3_12_sampled_8_nodes(census_8, scale):
    """Sampled census at the paper's n=8."""
    record_result(
        "fig_3_12",
        format_histogram(census_8,
                         title=f"Figure 3.12: interval census of 8-node DAGs "
                               f"({scale['census_samples']} uniform samples)"),
    )
    total = sum(census_8.values())
    # Worst case for n=8 is floor((8+1)^2/4) = 20 intervals; it must be
    # essentially absent from a uniform sample.
    worst_mass = sum(count for intervals, count in census_8.items() if intervals >= 17)
    assert worst_mass / total < 0.01
    # The bulk sits within [n, ~2n]: compression stays linear-ish.
    near_tree = sum(count for intervals, count in census_8.items() if intervals <= 16)
    assert near_tree / total > 0.99
    # Mode is close to the tree bound of 8 intervals.
    mode = max(census_8, key=census_8.get)
    assert 8 <= mode <= 12


def test_fig_3_12_exhaustive_5_nodes():
    """Exhaustive census at n=5 (all 1024 fixed-order DAGs)."""
    census = interval_census(5, sample=None)
    record_result(
        "fig_3_12_exhaustive_n5",
        format_histogram(census, title="Figure 3.12 (exhaustive, n=5): all 1024 DAGs"),
    )
    assert sum(census.values()) == 1024
    # Every DAG needs at least one interval per node.
    assert min(census) >= 5
    # n=5 worst case is floor((5+1)^2/4) = 9 intervals.
    assert max(census) <= 9


def test_census_kernel(benchmark):
    """Timing kernel: index builds over a stream of sampled 8-node DAGs."""
    graphs = list(sample_dags(8, 200, 42))

    def build_all() -> int:
        return sum(IntervalTCIndex.build(graph, gap=1).num_intervals
                   for graph in graphs)

    total = benchmark(build_all)
    assert total >= 8 * len(graphs)
