"""Figure 3.10 — adds the inverse closure to the Figure 3.9 comparison.

Paper shape: the inverse closure starts enormous (a sparse graph reaches
almost nothing, so almost every ordered pair is stored), falls rapidly as
degree grows, but the compressed closure "stays well below" it across the
sweep.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.baselines import InverseTCIndex
from repro.bench import format_table, storage_vs_degree
from repro.graph.generators import random_dag


@pytest.fixture(scope="module")
def inverse_rows(scale):
    return storage_vs_degree(scale["nodes"], scale["degrees"], seed=1989,
                             include_inverse=True)


def test_fig_3_10_shape(inverse_rows, scale):
    """Inverse closure decays but never undercuts the compressed closure."""
    record_result(
        "fig_3_10",
        format_table(inverse_rows,
                     title=f"Figure 3.10: + inverse closure, n={scale['nodes']}"),
    )
    inverse_multiples = [row["inverse_multiple"] for row in inverse_rows]
    # Strictly decreasing across the sweep (the paper's "falls rapidly").
    assert all(earlier > later for earlier, later
               in zip(inverse_multiples, inverse_multiples[1:]))
    # The compressed closure stays below the inverse closure everywhere.
    for row in inverse_rows:
        assert row["compressed"] < row["inverse"], row


def test_inverse_build_kernel(benchmark, scale):
    """Timing kernel: inverse-closure construction (O(n^2) by design)."""
    nodes = min(scale["nodes"], 500)
    graph = random_dag(nodes, 4, 1989)
    result = benchmark(lambda: InverseTCIndex.build(graph))
    assert result.num_pairs > 0
