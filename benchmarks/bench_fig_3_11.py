"""Figure 3.11 — storage for a degree-2 graph as a function of node count.

Paper shape: at fixed average degree, the full-closure multiple keeps
growing with graph size while the compressed multiple grows much slower —
"better compression for larger graphs".

Calibration note (see EXPERIMENTS.md, E-3.11): under a *uniform* random
arc placement the two multiples grow roughly in parallel — the compressed
closure stays strictly smaller at every size, but the *relative* gap does
not widen.  Under a topologically *local* arc placement (arcs bounded to a
window of 20 positions, the shape of real part/concept hierarchies) the
paper's claim shows up dramatically: the full multiple explodes with n
while the compressed multiple stays nearly flat.  Both workloads are
regenerated here.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_table, storage_vs_size
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag_local


@pytest.fixture(scope="module")
def uniform_rows(scale):
    return storage_vs_size(scale["sizes"], degree=2.0, seed=1989, trials=3,
                           workload="uniform")


@pytest.fixture(scope="module")
def local_rows(scale):
    return storage_vs_size(scale["sizes"], degree=2.0, seed=1989, trials=3,
                           workload="local")


def test_fig_3_11_uniform_workload(uniform_rows):
    """Uniform arcs: compressed strictly below full at every size."""
    record_result(
        "fig_3_11_uniform",
        format_table(uniform_rows,
                     title="Figure 3.11 (uniform arcs): storage vs size, degree 2"),
    )
    for row in uniform_rows:
        assert row["compressed"] < row["full_closure"], row
    # The full-closure multiple keeps rising with size.
    full_multiples = [row["full_multiple"] for row in uniform_rows]
    assert full_multiples[-1] > full_multiples[0]


def test_fig_3_11_local_workload(local_rows):
    """Local arcs: the paper's better-compression-at-scale trend."""
    record_result(
        "fig_3_11_local",
        format_table(local_rows,
                     title="Figure 3.11 (local arcs, window 20): storage vs size"),
    )
    ratios = [row["full_multiple"] / row["compressed_multiple"] for row in local_rows]
    # Compression ratio improves monotonically from smallest to largest size.
    assert ratios[-1] > 1.5 * ratios[0], ratios
    # Compressed multiple stays within a small band while full explodes.
    compressed = [row["compressed_multiple"] for row in local_rows]
    full = [row["full_multiple"] for row in local_rows]
    assert max(compressed) < 3 * min(compressed)
    assert full[-1] > 4 * full[0]


def test_large_build_kernel(benchmark, scale):
    """Timing kernel: build at the figure's largest size (local workload)."""
    graph = random_dag_local(scale["sizes"][-1], 2, 1989, window=20)
    result = benchmark(lambda: IntervalTCIndex.build(graph, gap=1))
    assert result.num_intervals >= graph.num_nodes
