"""Reachability service throughput: batch coalescing on vs off.

The server's coalescer gathers ``check`` requests that arrive in the
same event-loop ready cycle — across any number of connections — and
answers them through one vectorised ``reachable_many`` call against a
single pinned snapshot.  This harness measures what that buys at the
wire: a real ``repro serve`` subprocess, hammered by closed-loop asyncio
clients, once with coalescing on and once with ``--no-coalesce``.

Two workloads:

* ``single_check`` — each client sends one ``check`` per round trip,
  the worst case for coalescing (batches only form across connections);
* ``page16_pipeline`` — each client pipelines a 16-check page per
  round trip (the "is each hit on this result page reachable?" shape),
  where one connection's flush alone forms a batch.

Run as a script to (re)generate ``BENCH_server.json`` at the repo root::

    $ python benchmarks/bench_server.py            # full matrix
    $ python benchmarks/bench_server.py --smoke    # CI-sized sanity run

The pytest wrapper runs the same harness at smoke scale against a
throwaway output path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from random import Random
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:  # script mode: make `repro` importable
    sys.path.insert(0, str(SRC_ROOT))

from repro.graph.generators import random_dag  # noqa: E402
from repro.graph.io import load_edge_list, save_edge_list  # noqa: E402
from repro.server.protocol import encode_frame, read_frame  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_server.json"
_ADDRESS = re.compile(r"serving on ([0-9.]+):(\d+)")


# ----------------------------------------------------------------------
# server subprocess
# ----------------------------------------------------------------------
def start_server(edges: Path, *, coalesce: bool, max_batch: int = 512,
                 workers: int = 0, snapshot_dir: Optional[Path] = None,
                 max_inflight: int = 0,
                 ) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve`` on a free port; return (proc, host, port).

    With ``workers`` > 0 this is a preforked cluster (the banner prints
    only after every worker is attached and accepting).  With
    ``max_inflight`` > 0 the server sheds excess load with
    ``overloaded`` responses instead of queueing without bound.
    """
    command = [sys.executable, "-m", "repro.cli", "serve", str(edges),
               "--engine", "hybrid", "--port", "0",
               "--max-batch", str(max_batch)]
    if workers:
        command += ["--workers", str(workers)]
        if snapshot_dir is not None:
            command += ["--snapshot-dir", str(snapshot_dir)]
    if max_inflight:
        command += ["--max-inflight", str(max_inflight)]
    if not coalesce:
        command.append("--no-coalesce")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(command, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = _ADDRESS.search(line)
    if not match:
        proc.terminate()
        _, stderr = proc.communicate(timeout=10)
        raise RuntimeError(f"server did not start: {line!r}\n{stderr}")
    return proc, match.group(1), int(match.group(2))


def stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - defensive
        proc.kill()
        proc.communicate()


# ----------------------------------------------------------------------
# closed-loop client load
# ----------------------------------------------------------------------
async def _worker(host: str, port: int, pairs: List[Tuple[str, str]],
                  page: int, measure_start: float, deadline: float,
                  latencies: List[float], counter: List[int]) -> None:
    """One closed-loop client: send a page, await every answer, repeat."""
    reader, writer = await asyncio.open_connection(host, port)
    request_id = 0
    cursor = 0
    try:
        while True:
            now = time.perf_counter()
            if now >= deadline:
                return
            frames = []
            for _ in range(page):
                source, destination = pairs[cursor % len(pairs)]
                cursor += 1
                frames.append(encode_frame({"id": request_id, "op": "check",
                                            "u": source, "v": destination}))
                request_id += 1
            started = time.perf_counter()
            writer.write(b"".join(frames))
            await writer.drain()
            for _ in range(page):
                response = await read_frame(reader)
                assert response is not None, "server closed mid-benchmark"
            elapsed = time.perf_counter() - started
            if started >= measure_start:
                latencies.append(elapsed)
                counter[0] += page
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def run_cell(host: str, port: int, pairs: List[Tuple[str, str]], *,
             concurrency: int, page: int, warmup: float, duration: float,
             repeats: int = 1) -> dict:
    """Hammer the server with ``concurrency`` closed-loop clients.

    Best-of-``repeats``: scheduler noise on a shared box only ever
    *lowers* throughput, so the fastest rep is the least-noisy one.
    """
    best = None
    for _ in range(repeats):
        latencies: List[float] = []
        counter = [0]

        async def scenario() -> None:
            start = time.perf_counter()
            measure_start = start + warmup
            deadline = measure_start + duration
            await asyncio.gather(*(
                _worker(host, port, pairs[offset:] + pairs[:offset], page,
                        measure_start, deadline, latencies, counter)
                for offset in range(concurrency)))

        asyncio.run(scenario())
        latencies.sort()
        cell = {
            "requests": counter[0],
            "req_per_sec": round(counter[0] / duration, 1),
            "round_trip_p50_ms": round(
                _percentile(latencies, 0.50) * 1e3, 3),
            "round_trip_p99_ms": round(
                _percentile(latencies, 0.99) * 1e3, 3),
        }
        if best is None or cell["req_per_sec"] > best["req_per_sec"]:
            best = cell
    return best


# ----------------------------------------------------------------------
# open-loop (fixed arrival rate) load
# ----------------------------------------------------------------------
async def _open_loop_connection(host: str, port: int,
                                pairs: List[Tuple[str, str]], rate: float,
                                start: float, measure_start: float,
                                deadline: float, latencies: List[float],
                                late_latencies: List[float],
                                stats: dict) -> None:
    """One open-loop sender: frames go out on a fixed schedule whether
    or not earlier answers have arrived.  Latency is measured from the
    *scheduled* send time, so queueing delay under overload is charged
    to the server (no coordinated omission).  Requests scheduled in the
    second half of the window also land in ``late_latencies``: a queue
    that grows without bound shows up as a second half far slower than
    the first."""
    reader, writer = await asyncio.open_connection(host, port)
    in_flight: dict = {}  # id -> scheduled send time
    midpoint = (measure_start + deadline) / 2.0

    async def receiver() -> None:
        while True:
            response = await read_frame(reader)
            if response is None:
                return
            scheduled = in_flight.pop(response.get("id"), None)
            if scheduled is None or scheduled < measure_start:
                continue
            error = response.get("error")
            if error is None:
                elapsed = time.perf_counter() - scheduled
                latencies.append(elapsed)
                if scheduled >= midpoint:
                    late_latencies.append(elapsed)
                stats["answered"] += 1
            elif error.get("code") == "overloaded":
                stats["overloaded"] += 1
                hint = error.get("retry_after_ms")
                if hint is not None:
                    stats["retry_after_ms"] = hint
            else:
                stats["errors"] += 1

    receive_task = asyncio.create_task(receiver())
    interval = 1.0 / rate
    next_send = start
    request_id = 0
    cursor = 0
    try:
        while next_send < deadline:
            now = time.perf_counter()
            if next_send > now:
                await asyncio.sleep(next_send - now)
            source, destination = pairs[cursor % len(pairs)]
            cursor += 1
            in_flight[request_id] = next_send
            writer.write(encode_frame({"id": request_id, "op": "check",
                                       "u": source, "v": destination}))
            request_id += 1
            if next_send >= measure_start:
                stats["offered"] += 1
            next_send += interval
        await writer.drain()
        # Collect stragglers: under overload the tail keeps arriving
        # after the last send; give it a bounded settle window.
        settle = time.perf_counter() + 10.0
        while in_flight and time.perf_counter() < settle:
            await asyncio.sleep(0.01)
    finally:
        receive_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def run_open_loop_cell(host: str, port: int, pairs: List[Tuple[str, str]],
                       *, rate: float, connections: int, warmup: float,
                       duration: float) -> dict:
    """Offer ``rate`` check/s across ``connections`` senders; report the
    rate the server actually achieved and the latency distribution."""
    latencies: List[float] = []
    late_latencies: List[float] = []
    stats = {"offered": 0, "answered": 0, "overloaded": 0, "errors": 0,
             "retry_after_ms": None}

    async def scenario() -> None:
        start = time.perf_counter()
        measure_start = start + warmup
        deadline = measure_start + duration
        per_connection = rate / connections
        await asyncio.gather(*(
            _open_loop_connection(host, port,
                                  pairs[offset:] + pairs[:offset],
                                  per_connection,
                                  start + offset * (1.0 / rate),
                                  measure_start, deadline, latencies,
                                  late_latencies, stats)
            for offset in range(connections)))

    asyncio.run(scenario())
    latencies.sort()
    late_latencies.sort()
    return {
        "offered_rate": round(stats["offered"] / duration, 1),
        "achieved_rate": round(stats["answered"] / duration, 1),
        "offered": stats["offered"],
        "answered": stats["answered"],
        "overloaded": stats["overloaded"],
        "errors": stats["errors"],
        "retry_after_ms": stats["retry_after_ms"],
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "second_half_p99_ms": round(
            _percentile(late_latencies, 0.99) * 1e3, 3),
    }


def run_open_loop(host: str, port: int, pairs: List[Tuple[str, str]], *,
                  rates: Tuple[float, ...], connections: int,
                  warmup: float, duration: float) -> dict:
    cells = {}
    for rate in rates:
        cells[str(int(rate))] = run_open_loop_cell(
            host, port, pairs, rate=rate, connections=connections,
            warmup=warmup, duration=duration)
    return {"connections": connections, "per_rate": cells}


# ----------------------------------------------------------------------
# overload: offered rate >> capacity, load shedding on vs off
# ----------------------------------------------------------------------
def run_overload(edges: Path, pairs: List[Tuple[str, str]], *,
                 probe_concurrency: int, connections: int, factor: float,
                 max_inflight: int, warmup: float, duration: float) -> dict:
    """Drive the server far past capacity with and without shedding.

    A closed-loop probe measures sustainable throughput first; the
    open-loop phase then *offers* ``factor`` times that rate.  The
    closed-loop probe is round-trip-bound and so understates what the
    coalesced open-loop path absorbs (roughly 3x on the reference box);
    ``factor`` must clear that gap before the cell shows overload at
    all — hence the default of 6.  With ``--max-inflight`` set, the
    excess comes back immediately as ``overloaded`` + ``retry_after_ms``
    and the admitted tail stays bounded (second-half p99 tracks the
    first half); without it, every request queues, and the latency of
    the second half of the window pulls away from the first — the queue
    is growing without bound."""
    proc, host, port = start_server(edges, coalesce=True)
    try:
        probe = run_cell(host, port, pairs, concurrency=probe_concurrency,
                         page=1, warmup=warmup, duration=duration)
        offered = max(200.0, probe["req_per_sec"] * factor)
        shed_off = run_open_loop_cell(host, port, pairs, rate=offered,
                                      connections=connections,
                                      warmup=warmup, duration=duration)
    finally:
        stop_server(proc)
    proc, host, port = start_server(edges, coalesce=True,
                                    max_inflight=max_inflight)
    try:
        shed_on = run_open_loop_cell(host, port, pairs, rate=offered,
                                     connections=connections,
                                     warmup=warmup, duration=duration)
    finally:
        stop_server(proc)
    return {
        "workload": "single_check open-loop at %gx capacity" % factor,
        "overload_factor": factor,
        "max_inflight": max_inflight,
        "connections": connections,
        "capacity_probe": probe,
        "offered_rate_target": round(offered, 1),
        "shed_off": shed_off,
        "shed_on": shed_on,
    }


# ----------------------------------------------------------------------
# worker scaling (preforked cluster, 1/2/4/8 read workers)
# ----------------------------------------------------------------------
def run_worker_scaling(edges: Path, pairs: List[Tuple[str, str]], *,
                       levels: Tuple[int, ...], concurrency: int,
                       warmup: float, duration: float,
                       repeats: int = 1) -> dict:
    """Closed-loop single-check throughput at each worker count.

    Every level is a fresh ``repro serve --workers N`` cluster over the
    same graph; the single-process server runs first as the reference.
    ``speedup_vs_1`` is relative to the 1-worker cluster (apples to
    apples: same forwarding and generation machinery, more readers).
    """
    cells: dict = {}
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as scratch:
        variants = [("single_process", 0)] + [
            (str(level), level) for level in levels]
        for key, workers in variants:
            snapshot_dir = Path(scratch) / f"snap-{key}"
            proc, host, port = start_server(
                edges, coalesce=True, workers=workers,
                snapshot_dir=snapshot_dir if workers else None)
            try:
                cells[key] = run_cell(host, port, pairs,
                                      concurrency=concurrency, page=1,
                                      warmup=warmup, duration=duration,
                                      repeats=repeats)
            finally:
                stop_server(proc)
    one = cells.get(str(levels[0]), {}).get("req_per_sec") or None
    for key, cell in cells.items():
        if key == "single_process":
            continue
        cell["speedup_vs_1"] = round(
            cell["req_per_sec"] / one, 3) if one else None
    return {"workload": "single_check closed-loop",
            "concurrency": concurrency, "per_workers": cells}


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------
def run_benchmark(*, nodes: int, degree: float, seed: int,
                  concurrency_levels: Tuple[int, ...], warmup: float,
                  duration: float, repeats: int = 1,
                  pair_pool: int = 4096,
                  open_loop_rates: Tuple[float, ...] = (500.0, 2000.0),
                  open_loop_connections: int = 4,
                  worker_levels: Tuple[int, ...] = (1, 2, 4, 8),
                  scaling_concurrency: int = 16,
                  overload_factor: float = 6.0,
                  overload_connections: int = 8,
                  overload_max_inflight: int = 256,
                  overload_probe_concurrency: int = 16) -> dict:
    graph = random_dag(nodes, degree, seed)
    with tempfile.TemporaryDirectory(prefix="bench-server-") as scratch:
        edges = Path(scratch) / "graph.edges"
        save_edge_list(graph, edges)
        # Query with the labels the server will load (edge-list label
        # round-trip), so hit rates match what the server sees.
        loaded = load_edge_list(edges)
        node_list = sorted(loaded.nodes(), key=repr)
        rng = Random(seed + 1)
        pairs = [(rng.choice(node_list), rng.choice(node_list))
                 for _ in range(pair_pool)]

        workloads = {"single_check": 1, "page16_pipeline": 16}
        results: dict = {name: {"page": page, "per_concurrency": {}}
                         for name, page in workloads.items()}
        # Both servers run for the whole matrix, and each cell's reps
        # alternate on/off so the two modes see the same box noise —
        # a background burst can no longer skew one mode's whole phase.
        servers = {}
        try:
            for coalesce in (True, False):
                mode = "coalesce_on" if coalesce else "coalesce_off"
                servers[mode] = start_server(edges, coalesce=coalesce)
            for name, page in workloads.items():
                for concurrency in concurrency_levels:
                    cell: dict = {}
                    for _ in range(repeats):
                        for mode, (_, host, port) in servers.items():
                            rep = run_cell(host, port, pairs,
                                           concurrency=concurrency,
                                           page=page, warmup=warmup,
                                           duration=duration)
                            if (mode not in cell or rep["req_per_sec"]
                                    > cell[mode]["req_per_sec"]):
                                cell[mode] = rep
                    results[name]["per_concurrency"][str(concurrency)] = cell
            # Open loop runs against the coalescing server: fixed
            # arrival rate, latency charged from the scheduled send.
            _, on_host, on_port = servers["coalesce_on"]
            open_loop = run_open_loop(
                on_host, on_port, pairs, rates=open_loop_rates,
                connections=open_loop_connections, warmup=warmup,
                duration=duration)
        finally:
            for proc, _, _ in servers.values():
                stop_server(proc)

        for name in workloads:
            for concurrency, cell in results[name]["per_concurrency"].items():
                on = cell["coalesce_on"]["req_per_sec"]
                off = cell["coalesce_off"]["req_per_sec"]
                cell["throughput_ratio"] = round(on / off, 3) if off else None

        worker_scaling = run_worker_scaling(
            edges, pairs, levels=worker_levels,
            concurrency=scaling_concurrency, warmup=warmup,
            duration=duration, repeats=repeats) if worker_levels else None

        overload = run_overload(
            edges, pairs, probe_concurrency=overload_probe_concurrency,
            connections=overload_connections, factor=overload_factor,
            max_inflight=overload_max_inflight, warmup=warmup,
            duration=duration)

    return {
        "meta": {
            "nodes": nodes,
            "degree": degree,
            "arcs": graph.num_arcs,
            "seed": seed,
            "concurrency_levels": list(concurrency_levels),
            "warmup_seconds": warmup,
            "duration_seconds": duration,
            "repeats_best_of": repeats,
            "pair_pool": pair_pool,
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "transport": "framed JSON over TCP, closed-loop clients",
        },
        "workloads": results,
        "open_loop": open_loop,
        "worker_scaling": worker_scaling,
        "overload": overload,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="served-reachability throughput, coalescing on vs off")
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--degree", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--concurrency", type=int, nargs="+",
                        default=[1, 8, 32, 64])
    parser.add_argument("--warmup", type=float, default=0.4,
                        help="seconds of unmeasured traffic per cell")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="measured seconds per cell")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N reps per cell")
    parser.add_argument("--open-loop-rates", type=float, nargs="+",
                        default=[500.0, 2000.0],
                        help="offered check/s for the open-loop cells")
    parser.add_argument("--open-loop-connections", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="cluster sizes for the worker-scaling cells")
    parser.add_argument("--scaling-concurrency", type=int, default=16,
                        help="closed-loop clients per worker-scaling cell")
    parser.add_argument("--overload-factor", type=float, default=6.0,
                        help="offered rate as a multiple of probed capacity")
    parser.add_argument("--overload-connections", type=int, default=8)
    parser.add_argument("--overload-max-inflight", type=int, default=256,
                        help="admission cap for the shed-on overload run")
    parser.add_argument("--overload-probe-concurrency", type=int,
                        default=16)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI (overrides scale flags)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 600)
        args.concurrency = [1, 8]
        args.warmup = min(args.warmup, 0.1)
        args.duration = min(args.duration, 0.4)
        args.repeats = min(args.repeats, 1)
        args.open_loop_rates = [300.0]
        args.open_loop_connections = 2
        args.workers = [1, 2]
        args.scaling_concurrency = 8
        args.overload_connections = 4
        args.overload_max_inflight = 8
        args.overload_probe_concurrency = 8

    result = run_benchmark(nodes=args.nodes, degree=args.degree,
                           seed=args.seed,
                           concurrency_levels=tuple(args.concurrency),
                           warmup=args.warmup, duration=args.duration,
                           repeats=args.repeats,
                           open_loop_rates=tuple(args.open_loop_rates),
                           open_loop_connections=args.open_loop_connections,
                           worker_levels=tuple(args.workers),
                           scaling_concurrency=args.scaling_concurrency,
                           overload_factor=args.overload_factor,
                           overload_connections=args.overload_connections,
                           overload_max_inflight=args.overload_max_inflight,
                           overload_probe_concurrency=(
                               args.overload_probe_concurrency))
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest wrapper (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_server_bench_smoke(tmp_path):
    """The harness runs end to end and produces a sane document."""
    result = run_benchmark(nodes=400, degree=1.8, seed=7,
                           concurrency_levels=(1, 4), warmup=0.05,
                           duration=0.25, open_loop_rates=(200.0,),
                           open_loop_connections=2, worker_levels=(1, 2),
                           scaling_concurrency=4,
                           overload_connections=2,
                           overload_max_inflight=4,
                           overload_probe_concurrency=4)
    (tmp_path / "BENCH_server.json").write_text(json.dumps(result))
    for name in ("single_check", "page16_pipeline"):
        for cell in result["workloads"][name]["per_concurrency"].values():
            assert cell["coalesce_on"]["requests"] > 0
            assert cell["coalesce_off"]["requests"] > 0
            assert cell["coalesce_on"]["round_trip_p50_ms"] <= \
                cell["coalesce_on"]["round_trip_p99_ms"]
            assert cell["throughput_ratio"] is not None
    open_cell = result["open_loop"]["per_rate"]["200"]
    assert open_cell["answered"] > 0
    assert open_cell["achieved_rate"] <= open_cell["offered_rate"] * 1.05
    assert open_cell["latency_p50_ms"] <= open_cell["latency_p99_ms"]
    scaling = result["worker_scaling"]["per_workers"]
    assert set(scaling) == {"single_process", "1", "2"}
    for cell in scaling.values():
        assert cell["requests"] > 0
    assert scaling["1"]["speedup_vs_1"] == 1.0
    overload = result["overload"]
    assert overload["capacity_probe"]["requests"] > 0
    for key in ("shed_off", "shed_on"):
        assert overload[key]["offered"] > 0
        assert overload[key]["answered"] > 0
    # At 4x capacity behind a tiny admission cap, shedding must fire,
    # and every shed carries the retry hint.
    assert overload["shed_on"]["overloaded"] > 0
    assert overload["shed_on"]["retry_after_ms"] is not None
    assert overload["shed_off"]["overloaded"] == 0
    # The on-beats-off and worker-speedup acceptance bars are judged on
    # the committed full-scale BENCH_server.json (with meta.cpu_count in
    # hand), not at smoke scale, where cells are too short for stable
    # ratios.


if __name__ == "__main__":
    sys.exit(main())
