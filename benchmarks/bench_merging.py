"""Section 3.3's merging experiment — "additional compression ... rather small".

Measures interval counts with and without adjacent/overlapping interval
merging across a (size x degree) grid.  The paper reports savings usually
below 5 %; random-generator details move the exact percentage, so the
shape assertions are: merging never *hurts*, and the savings stay modest
(well under the ~50 % a genuinely different scheme would need to matter).
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_table, merging_benefit
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag


@pytest.fixture(scope="module")
def merge_rows(scale):
    sizes = tuple(dict.fromkeys(
        max(50, scale["nodes"] // factor) for factor in (8, 4, 2)))
    return merging_benefit(sizes, (1, 2, 3, 5), seed=1989)


def test_merging_gains_are_small(merge_rows):
    record_result(
        "merging",
        format_table(merge_rows,
                     title="Section 3.3: benefit of adjacent-interval merging "
                           "(plus the affinity-ordering heuristic)"),
    )
    for row in merge_rows:
        assert row["merged_intervals"] <= row["intervals"], row
        assert row["saving_percent"] >= 0.0
    average_saving = sum(row["saving_percent"] for row in merge_rows) / len(merge_rows)
    assert average_saving < 15.0, (
        f"average merging saving {average_saving:.1f}% is far beyond the "
        f"paper's 'usually less than 5%'"
    )


def test_affinity_ordering_helps_on_average(merge_rows):
    """The heuristic for the paper's open ordering problem never hurts in
    aggregate (per-cell noise is allowed; the chain is greedy)."""
    total_plain = sum(row["merged_intervals"] for row in merge_rows)
    total_ordered = sum(row["ordered_merged"] for row in merge_rows)
    assert total_ordered <= total_plain * 1.002


def test_merged_index_stays_correct(scale):
    """Merging is a storage optimisation only — answers cannot change."""
    graph = random_dag(min(300, scale["nodes"]), 3, 1989)
    merged = IntervalTCIndex.build(graph, gap=1, merge=True)
    merged.verify()


def test_merge_kernel(benchmark, scale):
    """Timing kernel: the merging pass itself."""
    graph = random_dag(min(500, scale["nodes"]), 3, 1989)
    index = IntervalTCIndex.build(graph, gap=1)

    def merge_everything() -> int:
        return sum(len(interval_set.merged())
                   for interval_set in index.intervals.values())

    total = benchmark(merge_everything)
    assert total <= index.num_intervals
