"""Durability cost model: WAL throughput, checkpoint and recovery latency.

Three questions the crash-safe store raises, answered with numbers:

* **What does an append cost?** Raw :class:`~repro.durability.wal.WalWriter`
  throughput across ``fsync_every`` ∈ {1, 8, 64} — the knob that trades
  the size of the at-risk tail batch against ops/sec — plus the
  journalling tax measured end-to-end: the same op stream applied to a
  bare :class:`~repro.core.index.IntervalTCIndex` and to a
  :class:`~repro.durability.store.DurableTCIndex` on top of it.
* **What does a checkpoint cost?** Wall time to publish an atomic
  snapshot generation as the store grows.
* **What does recovery cost?** Opening the same store with a cold
  checkpoint and a long WAL tail (full replay) versus right after a
  checkpoint (no replay) — the latency the rotation policy exists to
  bound.

Run as a script to (re)generate ``BENCH_durability.json`` at the repo
root::

    $ python benchmarks/bench_durability.py            # paper scale
    $ python benchmarks/bench_durability.py --quick    # CI-sized run

The harness verifies every recovered store against the live one before
reporting a number.  The pytest wrappers at the bottom run the quick
scale against a throwaway path.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.durability import DurableTCIndex
from repro.durability.wal import WalWriter
from repro.testing.crashfuzz import generate_ops

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_durability.json"

FSYNC_BATCHES = (1, 8, 64)


def apply_op(target, op: list) -> None:
    """Apply one journal-shaped op to a store or a bare index."""
    kind = op[0]
    if kind == "add_node":
        target.add_node(op[1], op[2])
    elif kind == "add_arc":
        target.add_arc(op[1], op[2])
    elif kind == "remove_arc":
        target.remove_arc(op[1], op[2])
    elif kind == "remove_node":
        target.remove_node(op[1])
    elif kind == "renumber":
        target.renumber(op[1])
    elif kind == "merge":
        target.merge_intervals()


def mutation_stream(count: int, seed: int) -> List[list]:
    """A deterministic op stream with the checkpoint markers removed."""
    return [op for op in generate_ops(count, seed=seed)
            if op[0] != "checkpoint"]


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def bench_wal_append(records: int, seed: int) -> dict:
    """Raw segment-append throughput per fsync batch size."""
    op = ["add_arc", "some-node-label", "another-node-label"]
    rows = {}
    for fsync_every in FSYNC_BATCHES:
        with tempfile.TemporaryDirectory(prefix="bench-wal-") as scratch:
            path = Path(scratch) / "wal-0000000000000001.log"
            started = time.perf_counter()
            with WalWriter(path, next_seq=1,
                           fsync_every=fsync_every) as writer:
                for _ in range(records):
                    writer.append(op)
            elapsed = time.perf_counter() - started
            rows[str(fsync_every)] = {
                "records": records,
                "seconds": round(elapsed, 6),
                "appends_per_sec": round(records / elapsed, 1),
                "bytes": path.stat().st_size,
            }
    return rows


def bench_journalling_tax(ops: int, seed: int) -> dict:
    """The same mutations, bare index vs durable store."""
    from repro.core.index import IntervalTCIndex
    from repro.graph.digraph import DiGraph
    stream = mutation_stream(ops, seed)

    bare = IntervalTCIndex.build(DiGraph())
    started = time.perf_counter()
    for op in stream:
        apply_op(bare, op)
    bare_s = time.perf_counter() - started

    rows = {"bare_index": {"ops": len(stream),
                           "seconds": round(bare_s, 6),
                           "ops_per_sec": round(len(stream) / bare_s, 1)}}
    for fsync_every in FSYNC_BATCHES:
        with tempfile.TemporaryDirectory(prefix="bench-store-") as scratch:
            started = time.perf_counter()
            with DurableTCIndex.open(Path(scratch) / "store.d",
                                     fsync_every=fsync_every) as store:
                for op in stream:
                    apply_op(store, op)
            elapsed = time.perf_counter() - started
            rows[f"durable_fsync_{fsync_every}"] = {
                "ops": len(stream),
                "seconds": round(elapsed, 6),
                "ops_per_sec": round(len(stream) / elapsed, 1),
                "overhead_vs_bare": round(elapsed / bare_s, 2),
            }
    return rows


def bench_checkpoint_and_recovery(ops: int, seed: int) -> dict:
    """Checkpoint publication cost and replay-vs-snapshot open latency."""
    stream = mutation_stream(ops, seed)
    sizes = [max(10, len(stream) // 4), max(20, len(stream) // 2),
             len(stream)]
    rows = {}
    for size in sizes:
        with tempfile.TemporaryDirectory(prefix="bench-recover-") as scratch:
            directory = Path(scratch) / "store.d"
            with DurableTCIndex.open(directory) as store:
                for op in stream[:size]:
                    apply_op(store, op)
                live_nodes = sorted(store.nodes(), key=repr)

            # cold open: checkpoint 0 + full WAL replay
            started = time.perf_counter()
            replayed = DurableTCIndex.open(directory)
            replay_s = time.perf_counter() - started
            report = replayed.recovery_report
            assert report.ops_replayed == size
            assert sorted(replayed.nodes(), key=repr) == live_nodes

            # checkpoint, then open again: snapshot load, no replay
            started = time.perf_counter()
            replayed.checkpoint()
            checkpoint_s = time.perf_counter() - started
            replayed.close()
            started = time.perf_counter()
            snapshot = DurableTCIndex.open(directory)
            snapshot_s = time.perf_counter() - started
            assert snapshot.recovery_report.ops_replayed == 0
            assert sorted(snapshot.nodes(), key=repr) == live_nodes
            snapshot.close()

            rows[str(size)] = {
                "log_records": size,
                "nodes": len(live_nodes),
                "replay_open_ms": round(replay_s * 1e3, 3),
                "checkpoint_ms": round(checkpoint_s * 1e3, 3),
                "snapshot_open_ms": round(snapshot_s * 1e3, 3),
                "verified_identical": True,
            }
    return rows


def run_benchmark(*, records: int, ops: int, seed: int) -> dict:
    return {
        "meta": {"wal_records": records, "store_ops": ops, "seed": seed,
                 "fsync_batches": list(FSYNC_BATCHES)},
        "wal_append": bench_wal_append(records, seed),
        "journalling_tax": bench_journalling_tax(ops, seed),
        "checkpoint_recovery": bench_checkpoint_and_recovery(ops, seed),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="WAL, checkpoint and recovery cost model")
    parser.add_argument("--records", type=int, default=20000,
                        help="raw WAL appends per fsync batch size")
    parser.add_argument("--ops", type=int, default=1500,
                        help="store mutations for the tax/recovery sections")
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale for CI (overrides sizes)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.quick:
        args.records = min(args.records, 3000)
        args.ops = min(args.ops, 300)

    result = run_benchmark(records=args.records, ops=args.ops,
                           seed=args.seed)
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")

    batched = result["wal_append"][str(FSYNC_BATCHES[-1])]["appends_per_sec"]
    synchronous = result["wal_append"]["1"]["appends_per_sec"]
    print(f"fsync batching: {synchronous:.0f} -> {batched:.0f} appends/sec "
          f"(x{batched / synchronous:.1f})")
    return 0


# ----------------------------------------------------------------------
# pytest wrappers (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_durability_benchmark_quick(tmp_path):
    """Quick-scale run; recovered-state parity is asserted inside."""
    result = run_benchmark(records=1500, ops=150, seed=1989)
    (tmp_path / "BENCH_durability.json").write_text(json.dumps(result))
    for row in result["checkpoint_recovery"].values():
        assert row["verified_identical"]
    for fsync_every in FSYNC_BATCHES:
        assert result["wal_append"][str(fsync_every)]["appends_per_sec"] > 0
        assert result["journalling_tax"][f"durable_fsync_{fsync_every}"][
            "ops_per_sec"] > 0


def test_recovery_cost_scales_with_log_length():
    """A snapshot open must not replay; a cold open replays everything."""
    result = run_benchmark(records=500, ops=120, seed=7)
    rows = list(result["checkpoint_recovery"].values())
    assert [row["log_records"] for row in rows] == sorted(
        row["log_records"] for row in rows)
    for row in rows:
        assert row["replay_open_ms"] > 0
        assert row["snapshot_open_ms"] > 0


if __name__ == "__main__":
    sys.exit(main())
