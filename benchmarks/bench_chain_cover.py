"""Theorem 2 — tree-cover intervals vs. chain-cover entries (Section 5).

The paper proves the interval scheme on the optimal tree cover never needs
more storage than the best chain compression (without chain reduction),
and notes trees are the separating family: a tree costs O(n) intervals but
far more chain entries.  Schubert's multi-hierarchy labeling is reported
alongside as the second related-work comparator.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.baselines import ChainTCIndex
from repro.bench import chain_comparison, format_table
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag, random_tree


@pytest.fixture(scope="module")
def chain_rows(scale):
    sizes = tuple(dict.fromkeys(
        max(30, scale["nodes"] // factor) for factor in (16, 8, 4)))
    return chain_comparison(sizes, (1.5, 2, 3), seed=1989)


def test_theorem_2_inequality(chain_rows):
    """intervals <= chain entries, for both decompositions, on every graph."""
    record_result(
        "chain_cover",
        format_table(chain_rows, title="Theorem 2: tree cover vs chain cover"),
    )
    for row in chain_rows:
        assert row["intervals"] <= row["chain_entries_greedy"], row
        assert row["intervals"] <= row["chain_entries_optimal"], row


def test_trees_separate_the_schemes():
    """On a tree the interval scheme is O(n) but chains pay much more."""
    tree = random_tree(300, 1989)
    intervals = IntervalTCIndex.build(tree, gap=1).num_intervals
    chain_entries = ChainTCIndex.build(tree, "optimal").num_entries
    assert intervals == 300          # exactly one interval per node
    assert chain_entries > 2 * intervals


def test_schubert_storage_grows_with_overlap(chain_rows):
    """Schubert's per-hierarchy labels pay for the max in-degree."""
    for row in chain_rows:
        if row["degree"] >= 2:
            assert row["schubert_intervals"] >= row["intervals"], row


def test_chain_build_kernel(benchmark, scale):
    """Timing kernel: greedy chain index construction."""
    graph = random_dag(min(300, scale["nodes"]), 2, 1989)
    result = benchmark(lambda: ChainTCIndex.build(graph, "greedy"))
    assert result.num_entries > 0
