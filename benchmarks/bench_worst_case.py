"""Figures 3.6 / 3.7 — the bipartite worst case and the intermediary fix.

K(m, k) (every source points to every sink) drives the compressed closure
to Theta(n^2/4) intervals; adding one hub node between the two sides
(identical source->sink reachability) restores O(n).  The paper uses this
pair to argue worst cases are an artifact of "a large number of nodes
[having] the same set of immediate successors" and are engineering-fixable.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_table, worst_case_bipartite
from repro.core.index import IntervalTCIndex
from repro.graph.generators import bipartite_with_intermediary, bipartite_worst_case


@pytest.fixture(scope="module")
def worst_rows():
    return worst_case_bipartite(15, 16)


def test_fig_3_6_and_3_7(worst_rows):
    """Quadratic blow-up without the hub, linear with it."""
    record_result(
        "fig_3_6_3_7",
        format_table(worst_rows, title="Figures 3.6/3.7: bipartite worst case"),
    )
    direct, hubbed = worst_rows
    num_sources, num_sinks = 15, 16
    n = num_sources + num_sinks
    # Paper: the worst case costs about (n+1)^2/4 intervals overall; here
    # each of the m sources keeps ~k intervals (one per sink subtree it
    # cannot cover through the single tree arc).
    assert direct["intervals"] >= num_sources * (num_sinks - 1)
    # The hub collapses it to O(n): paper gives (m+2) + 2(n-m-1) ~ 2n-m.
    assert hubbed["intervals"] <= 2 * n
    assert hubbed["intervals"] * 4 < direct["intervals"]


def test_worst_case_scaling():
    """The direct construction really grows quadratically, the hub linearly."""
    direct_counts = []
    hub_counts = []
    for half in (5, 10, 20):
        direct_counts.append(
            IntervalTCIndex.build(bipartite_worst_case(half, half), gap=1).num_intervals)
        hub_counts.append(
            IntervalTCIndex.build(bipartite_with_intermediary(half, half),
                                  gap=1).num_intervals)
    # Doubling m quadruples the direct cost (about), but only doubles the hub cost.
    assert direct_counts[2] > 3.2 * direct_counts[1] > 10 * hub_counts[1] / 4
    assert hub_counts[2] < 2.5 * hub_counts[1]


def test_worst_case_kernel(benchmark):
    """Timing kernel: building the quadratic-closure graph."""
    graph = bipartite_worst_case(25, 25)
    result = benchmark(lambda: IntervalTCIndex.build(graph, gap=1))
    assert result.num_intervals >= 25 * 24
