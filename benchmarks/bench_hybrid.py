"""Hybrid delta-overlay engine vs its two parents under mixed workloads.

Three update strategies run the *same* concrete read/write script:

* ``interval`` — the mutable dict engine: every read pays its per-query
  constant, every write is a Section 4 gap-based update.
* ``refreeze`` — flat-array reads, but the snapshot is strict: every
  write applies the gap-based update **and recompiles the frozen view**
  before the next read (the only way to keep serving from a
  :class:`~repro.core.frozen.FrozenTCIndex` under writes before the
  hybrid existed).
* ``hybrid`` — :class:`~repro.core.hybrid.HybridTCIndex` at its default
  compaction thresholds: flat-array reads corrected through the delta
  overlay, compaction amortised across write bursts.

Workload mixes are 99/1, 90/10 and 50/50 reads/writes; reported numbers
are ops/sec over the whole script and the p99 per-op latency.  Every
engine's read answers are collected and compared — a strategy only gets
a number after answering identically to the mutable engine.

Run as a script to (re)generate ``BENCH_hybrid.json`` at the repo root::

    $ python benchmarks/bench_hybrid.py            # paper scale
    $ python benchmarks/bench_hybrid.py --quick    # CI-sized sanity run

Either mode exits non-zero if the hybrid fails to beat the re-freeze
strategy on the 99/1 mix — that margin is the engine's reason to exist.
The pytest wrappers below run the quick scale against a throwaway path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from random import Random
from typing import List, Optional, Tuple

from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hybrid.json"

#: (name, write fraction, op-budget scale) for each reported mix.  The
#: write-heavy mixes run shorter scripts: the re-freeze baseline pays a
#: full recompile per write, and a few hundred writes already pin down
#: its per-op cost precisely.
MIXES: Tuple[Tuple[str, float, float], ...] = (
    ("99/1", 0.01, 1.0),
    ("90/10", 0.10, 0.5),
    ("50/50", 0.50, 0.2),
)


def make_script(graph: DiGraph, *, ops: int, write_fraction: float,
                seed: int) -> List[list]:
    """One concrete, replayable op list shared by every strategy.

    Writes alternate arc insertions (validated against a scratch mirror
    so every strategy applies the exact same mutations) with new-node
    insertions; reads are random ``reachable`` pairs.
    """
    rng = Random(seed)
    mirror = SetMirror(graph)
    script: List[list] = []
    next_label = len(mirror.nodes)
    writes_due = 0.0
    for _ in range(ops):
        writes_due += write_fraction
        if writes_due >= 1.0:
            writes_due -= 1.0
            op = None
            for _ in range(20):
                source, destination = rng.sample(mirror.nodes, 2)
                if mirror.can_add(source, destination):
                    op = ["add_arc", source, destination]
                    break
            if op is None:
                parent = rng.choice(mirror.nodes)
                op = ["add_node", next_label, parent]
                next_label += 1
            if rng.random() < 0.3:  # keep node churn in the write mix
                parent = rng.choice(mirror.nodes)
                op = ["add_node", next_label, parent]
                next_label += 1
            mirror.apply(op)
            script.append(op)
        else:
            script.append(["query", rng.choice(mirror.nodes),
                           rng.choice(mirror.nodes)])
    return script


class SetMirror:
    """Tiny closure mirror used only while generating applicable scripts."""

    def __init__(self, graph: DiGraph) -> None:
        self.succ = {node: set(graph.successors(node))
                     for node in graph.nodes()}
        self.nodes = sorted(self.succ)

    def can_add(self, source: int, destination: int) -> bool:
        return (source != destination
                and destination not in self.succ[source]
                and not self._reaches(destination, source))

    def _reaches(self, source: int, destination: int) -> bool:
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            if node == destination:
                return True
            for successor in self.succ[node]:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False

    def apply(self, op: list) -> None:
        if op[0] == "add_arc":
            self.succ[op[1]].add(op[2])
        else:
            _, node, parent = op
            self.succ[node] = set()
            self.succ[parent].add(node)
            self.nodes.append(node)


# ----------------------------------------------------------------------
# strategies: each returns (answers, per-op seconds)
# ----------------------------------------------------------------------
def run_interval(graph: DiGraph, script: List[list]) -> Tuple[list, list]:
    index = IntervalTCIndex.build(graph.copy())
    answers, latencies = [], []
    for op in script:
        started = time.perf_counter()
        if op[0] == "query":
            answers.append(index.reachable(op[1], op[2]))
        elif op[0] == "add_arc":
            index.add_arc(op[1], op[2])
        else:
            index.add_node(op[1], parents=[op[2]])
        latencies.append(time.perf_counter() - started)
    return answers, latencies


def run_refreeze(graph: DiGraph, script: List[list],
                 backend: Optional[str]) -> Tuple[list, list]:
    index = IntervalTCIndex.build(graph.copy())
    frozen = FrozenTCIndex.from_index(index, backend=backend)
    answers, latencies = [], []
    for op in script:
        started = time.perf_counter()
        if op[0] == "query":
            answers.append(frozen.reachable(op[1], op[2]))
        else:
            if op[0] == "add_arc":
                index.add_arc(op[1], op[2])
            else:
                index.add_node(op[1], parents=[op[2]])
            frozen = FrozenTCIndex.from_index(index, backend=backend)
        latencies.append(time.perf_counter() - started)
    return answers, latencies


def run_hybrid(graph: DiGraph, script: List[list],
               backend: Optional[str]) -> Tuple[list, list, HybridTCIndex]:
    hybrid = HybridTCIndex.build(graph.copy(), backend=backend)
    answers, latencies = [], []
    for op in script:
        started = time.perf_counter()
        if op[0] == "query":
            answers.append(hybrid.reachable(op[1], op[2]))
        elif op[0] == "add_arc":
            hybrid.add_arc(op[1], op[2])
        else:
            hybrid.add_node(op[1], parents=[op[2]])
        latencies.append(time.perf_counter() - started)
    return answers, latencies, hybrid


def _p99(latencies: List[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]


def _report(latencies: List[float]) -> dict:
    total = sum(latencies)
    return {
        "seconds": round(total, 6),
        "ops_per_sec": round(len(latencies) / total, 1),
        "p99_us": round(_p99(latencies) * 1e6, 2),
    }


def run_benchmark(*, nodes: int, degree: float, ops: int, seed: int,
                  backend: Optional[str] = None) -> dict:
    graph = random_dag(nodes, degree, seed)
    mixes = {}
    for mix_name, write_fraction, ops_scale in MIXES:
        script = make_script(graph, ops=max(200, int(ops * ops_scale)),
                             write_fraction=write_fraction,
                             seed=seed + int(write_fraction * 1000))
        interval_answers, interval_lat = run_interval(graph, script)
        refreeze_answers, refreeze_lat = run_refreeze(graph, script, backend)
        hybrid_answers, hybrid_lat, hybrid = run_hybrid(graph, script,
                                                        backend)
        if refreeze_answers != interval_answers:
            raise AssertionError(f"refreeze diverged on the {mix_name} mix")
        if hybrid_answers != interval_answers:
            raise AssertionError(f"hybrid diverged on the {mix_name} mix")
        writes = sum(1 for op in script if op[0] != "query")
        entry = {
            "ops": len(script),
            "writes": writes,
            "reads": len(script) - writes,
            "verified_identical": True,
            "hybrid_compactions": hybrid.compactions,
            "interval": _report(interval_lat),
            "refreeze": _report(refreeze_lat),
            "hybrid": _report(hybrid_lat),
        }
        entry["hybrid_vs_refreeze"] = round(
            entry["hybrid"]["ops_per_sec"] / entry["refreeze"]["ops_per_sec"],
            2)
        mixes[mix_name] = entry
    return {
        "meta": {
            "nodes": nodes,
            "degree": degree,
            "arcs": graph.num_arcs,
            "ops_per_mix": ops,
            "seed": seed,
            "backend": backend or "default",
        },
        "mixes": mixes,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="hybrid vs interval vs re-freeze under mixed workloads")
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--degree", type=float, default=2.0)
    parser.add_argument("--ops", type=int, default=6000,
                        help="operations per workload mix")
    parser.add_argument("--seed", type=int, default=1989)
    parser.add_argument("--backend", choices=("numpy", "array"), default=None)
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale for CI (overrides --nodes/--ops)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes = min(args.nodes, 1000)
        args.ops = min(args.ops, 2000)

    result = run_benchmark(nodes=args.nodes, degree=args.degree,
                           ops=args.ops, seed=args.seed,
                           backend=args.backend)
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"\nresults written to {args.output}")

    margin = result["mixes"]["99/1"]["hybrid_vs_refreeze"]
    if margin < 1.0:
        print(f"FAIL: hybrid is {margin}x the re-freeze strategy on the "
              f"99/1 mix (must be >= 1.0)", file=sys.stderr)
        return 1
    print(f"hybrid is {margin}x the re-freeze strategy on the 99/1 mix")
    return 0


# ----------------------------------------------------------------------
# pytest wrappers (collected via the bench_*.py pattern)
# ----------------------------------------------------------------------
def test_hybrid_beats_refreeze_on_read_heavy_mix(tmp_path):
    """Quick-scale run of the full harness; parity checked inside."""
    result = run_benchmark(nodes=800, degree=2.0, ops=1500, seed=1989)
    (tmp_path / "BENCH_hybrid.json").write_text(json.dumps(result))
    for mix_name, _, _ in MIXES:
        assert result["mixes"][mix_name]["verified_identical"]
    # The committed BENCH_hybrid.json enforces the full 5x bar at paper
    # scale; at smoke scale the margin is asserted loosely.
    assert result["mixes"]["99/1"]["hybrid_vs_refreeze"] >= 1.0


def test_hybrid_compacts_under_write_pressure():
    result = run_benchmark(nodes=400, degree=2.0, ops=800, seed=7)
    assert result["mixes"]["50/50"]["hybrid_compactions"] > 0
    assert result["mixes"]["50/50"]["verified_identical"]


if __name__ == "__main__":
    sys.exit(main())
