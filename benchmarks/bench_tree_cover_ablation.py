"""Ablation — how much does Alg1's tree-cover choice actually buy?

Theorem 1 says Alg1 minimises the total interval count over all tree
covers.  This experiment quantifies the margin against naive policies
(first/last parent, random parent, and the pessimal smallest-predecessor-
set choice) on random DAGs.  DESIGN.md lists this as ablation #1.
"""

from __future__ import annotations

import pytest

from _utils import record_result
from repro.bench import format_table, tree_cover_ablation
from repro.core.index import IntervalTCIndex
from repro.core.tree_cover import POLICIES, build_tree_cover
from repro.graph.generators import random_dag


@pytest.fixture(scope="module")
def ablation_rows(scale):
    sizes = (max(50, scale["nodes"] // 8), max(100, scale["nodes"] // 4))
    return tree_cover_ablation(sizes, (2, 4), seed=1989)


def test_alg1_is_never_beaten(ablation_rows):
    record_result(
        "tree_cover_ablation",
        format_table(ablation_rows,
                     title="Ablation: interval count per tree-cover policy"),
    )
    for row in ablation_rows:
        for policy in POLICIES:
            assert row["alg1"] <= row[policy], (row, policy)


def test_alg1_margin_is_material(ablation_rows):
    """Against the pessimal policy the optimal cover saves real storage."""
    for row in ablation_rows:
        assert row["min_pred"] > row["alg1"] * 1.05, row


def test_cover_build_kernel(benchmark, scale):
    """Timing kernel: Alg1 tree-cover construction alone."""
    graph = random_dag(scale["nodes"], 4, 1989)
    cover = benchmark(lambda: build_tree_cover(graph, "alg1"))
    assert len(cover.parent) == graph.num_nodes


def test_full_build_by_policy(benchmark, scale):
    """Timing kernel: full build under the default policy (for comparison)."""
    graph = random_dag(min(500, scale["nodes"]), 4, 1989)
    result = benchmark(lambda: IntervalTCIndex.build(graph, policy="alg1", gap=1))
    assert result.policy == "alg1"
