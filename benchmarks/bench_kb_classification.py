"""Section 2.1's workload — classification over a growing knowledge base.

"Computing the subsumption relationship between a new concept and
previously known ones is the key inference ... this relationship is
therefore precomputed, cached as a hierarchy, and must be managed
efficiently."  This benchmark classifies a stream of feature-defined
concepts into a taxonomy backed by the interval index and checks the two
claims that matter: insertion stays cheap as the KB grows, and subsumption
probes answer from the cache instead of traversing definitions.
"""

from __future__ import annotations

import random

import pytest

from _utils import record_result
from repro.bench import format_table
from repro.kb.classifier import Classifier

FEATURE_POOL = [f"f{i}" for i in range(14)]


def _definition_stream(count: int, seed: int):
    rng = random.Random(seed)
    for counter in range(count):
        size = rng.randint(1, 5)
        yield ("concept", counter), sorted(rng.sample(FEATURE_POOL, size))


def _classify_stream(count: int, seed: int) -> Classifier:
    classifier = Classifier()
    for name, features in _definition_stream(count, seed):
        try:
            classifier.define(name, features=features)
        except Exception:  # duplicate denotation returns existing; never raises
            raise
    return classifier


@pytest.fixture(scope="module")
def grown(scale):
    count = max(150, scale["nodes"] // 4)
    return _classify_stream(count, 1989), count


def test_classified_lattice_is_consistent(grown):
    classifier, count = grown
    classifier.check_lattice_consistency()
    classifier.taxonomy.index.verify()
    rows = [{
        "definitions": count,
        "distinct_concepts": len(classifier.concepts()),
        "storage_units": classifier.taxonomy.storage_units,
        "units_per_concept": classifier.taxonomy.storage_units
        / max(1, len(classifier.concepts())),
    }]
    record_result(
        "kb_classification",
        format_table(rows, title="Section 2.1: classification workload"),
    )
    # Feature lattices overlap heavily; the index must stay near-linear.
    assert rows[0]["units_per_concept"] < 30


def test_subsumption_probe_is_cached(grown):
    """A subsumption probe must not scale with definition count."""
    classifier, _ = grown
    concepts = sorted(classifier.concepts(), key=str)
    rng = random.Random(3)
    probes = [(rng.choice(concepts), rng.choice(concepts)) for _ in range(500)]
    for general, specific in probes:
        expected = classifier.features_of(general) <= \
            classifier.features_of(specific)
        assert classifier.subsumes(general, specific) == expected


def test_classification_kernel(benchmark, scale):
    """Timing kernel: classify a full definition stream."""
    count = max(100, scale["nodes"] // 8)
    classifier = benchmark(lambda: _classify_stream(count, 7))
    assert len(classifier.concepts()) > 1


def test_probe_kernel(benchmark, grown):
    """Timing kernel: cached subsumption probes."""
    classifier, _ = grown
    concepts = sorted(classifier.concepts(), key=str)
    rng = random.Random(5)
    pairs = [(rng.choice(concepts), rng.choice(concepts)) for _ in range(2000)]
    hits = benchmark(lambda: sum(classifier.subsumes(g, s) for g, s in pairs))
    assert 0 <= hits <= len(pairs)
