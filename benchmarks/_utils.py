"""Helpers shared by the benchmark files (kept out of conftest so the
module name cannot collide with the test suite's conftest)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Persist a rendered table/histogram under ``results/`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
