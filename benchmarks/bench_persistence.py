"""Extension experiment — persistence formats for a built closure.

"Compression is a one-time activity, and once the compressed closure has
been obtained, it can be repeatedly used" (Section 3.2) — which makes the
persisted artifact's size and load cost part of the system's story.
Compares the JSON document (debuggable, label-agnostic) against the RTCX
binary page format (compact, query-able without full deserialisation),
and both against rebuilding from scratch.
"""

from __future__ import annotations

import json
import time

import pytest

from _utils import record_result
from repro.bench import format_table
from repro.core.index import IntervalTCIndex
from repro.core.serialize import index_to_dict, save_index
from repro.factory import open_index
from repro.graph.generators import random_dag
from repro.storage.diskindex import DiskIntervalIndex, write_index


@pytest.fixture(scope="module")
def persisted(tmp_path_factory, scale):
    base = tmp_path_factory.mktemp("persist")
    graph = random_dag(min(1000, scale["nodes"]), 3, 1989)
    build_start = time.perf_counter()
    index = IntervalTCIndex.build(graph, gap=1)
    build_seconds = time.perf_counter() - build_start

    json_path = base / "closure.json"
    save_index(index, json_path)
    rtcx_path = base / "closure.rtcx"
    write_index(index, rtcx_path)
    return graph, index, build_seconds, json_path, rtcx_path


def test_persistence_profile(persisted):
    graph, index, build_seconds, json_path, rtcx_path = persisted

    load_start = time.perf_counter()
    loaded = open_index(json_path, engine="interval")
    json_load_seconds = time.perf_counter() - load_start

    open_start = time.perf_counter()
    with DiskIntervalIndex.open(rtcx_path) as disk:
        open_seconds = time.perf_counter() - open_start
        sample = list(graph.nodes())[:50]
        for node in sample:
            assert disk.reachable(node, node)

    rows = [
        {"artifact": "rebuild from graph", "bytes": "-",
         "seconds": build_seconds},
        {"artifact": "JSON document", "bytes": json_path.stat().st_size,
         "seconds": json_load_seconds},
        {"artifact": "RTCX binary", "bytes": rtcx_path.stat().st_size,
         "seconds": open_seconds},
    ]
    record_result("persistence",
                  format_table(rows, title="Persisting a built closure"))

    # The binary format is smaller than the JSON document (the margin
    # grows with index size; fixed-width u64 fields dominate at tiny n).
    assert rtcx_path.stat().st_size < json_path.stat().st_size
    # Opening the binary index (directory only) beats full JSON loading.
    assert open_seconds < json_load_seconds
    # And the loaded JSON index answers identically.
    for node in list(graph.nodes())[:50]:
        assert loaded.successors(node) == index.successors(node)


def test_json_size_tracks_intervals(persisted):
    _, index, _, json_path, _ = persisted
    document = index_to_dict(index)
    assert len(json.dumps(document)) == json_path.stat().st_size


def test_json_load_kernel(benchmark, persisted):
    _, _, _, json_path, _ = persisted
    loaded = benchmark(lambda: open_index(json_path, engine="interval"))
    assert len(loaded) > 0


def test_rtcx_open_kernel(benchmark, persisted):
    _, _, _, _, rtcx_path = persisted

    def open_and_probe() -> int:
        with DiskIntervalIndex.open(rtcx_path) as disk:
            return len(disk)

    assert benchmark(open_and_probe) > 0


def test_rtcx_query_kernel(benchmark, persisted):
    graph, _, _, _, rtcx_path = persisted
    import random
    rng = random.Random(11)
    nodes = list(graph.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(500)]
    with DiskIntervalIndex.open(rtcx_path) as disk:
        hits = benchmark(lambda: sum(disk.reachable(u, v) for u, v in pairs))
        assert 0 <= hits <= len(pairs)
