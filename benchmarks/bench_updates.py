"""Section 4 — incremental update cost vs. closure recomputation.

Measures the three write paths the paper optimises: new-node insertion
(tree arc, absorbed by numbering gaps), non-tree arc insertion (cut-off
propagation), and the refinement pattern (new node under parents that
already subsume its reach).  Also the gap-width ablation from DESIGN.md.
"""

from __future__ import annotations

import random

import pytest

from _utils import record_result
from repro.bench import format_table, update_cost
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag, random_hierarchy


@pytest.fixture(scope="module")
def update_rows(scale):
    return update_cost(min(500, scale["nodes"]), 2.0,
                       batch=scale["update_batch"], seed=1989)


def test_incremental_beats_rebuild(update_rows):
    record_result(
        "updates",
        format_table(update_rows,
                     title="Section 4: incremental maintenance vs rebuild-per-update"),
    )
    for row in update_rows:
        assert row["speedup"] > 5.0, row


def test_updates_preserve_exactness(scale):
    """After a long mixed stream the index still matches ground truth."""
    index = IntervalTCIndex.build(random_hierarchy(200, rng=3), gap=32)
    rng = random.Random(5)
    for step in range(scale["update_batch"]):
        nodes = list(index.nodes())
        index.add_node(("u", step), parents=rng.sample(nodes, k=2))
        if step % 5 == 0:
            source, destination = rng.choice(list(index.graph.arcs()))
            index.remove_arc(source, destination)
    index.check_invariants()
    index.verify()


@pytest.mark.parametrize("gap", [2, 8, 64])
def test_gap_width_ablation(benchmark, gap, scale):
    """Wider numbering gaps defer renumbering -> cheaper insert streams."""
    base = random_hierarchy(min(400, scale["nodes"]), rng=11)

    def insert_stream() -> int:
        index = IntervalTCIndex.build(base.copy(), gap=gap)
        rng = random.Random(17)
        nodes = list(index.nodes())
        for step in range(scale["update_batch"]):
            index.add_node(("g", gap, step), parents=[rng.choice(nodes)])
        return index.num_intervals

    total = benchmark(insert_stream)
    assert total > 0
