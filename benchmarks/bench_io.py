"""Section 2.2 — I/O traffic of paged closures through a buffer pool.

"In the case of large relations, the information will reside on secondary
storage, and hence we need to minimise I/O traffic."  Both closure layouts
are packed onto fixed-size pages behind identical LRU pools; the same
random query load is replayed against each and page faults are compared.
The compressed layout occupies fewer pages, so the same pool covers a
larger fraction of it: strictly fewer faults.
"""

from __future__ import annotations

import random

import pytest

from _utils import record_result
from repro.baselines import FullTCIndex
from repro.bench import format_table, io_traffic
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag
from repro.storage.pager import BufferPool, PagedIntervalStore, PagedSuccessorStore


@pytest.fixture(scope="module")
def io_rows(scale):
    return io_traffic(min(500, scale["nodes"]), 3.0, queries=scale["queries"],
                      pool_pages=8, page_capacity=128, seed=1989)


def test_compressed_layout_faults_less(io_rows):
    record_result(
        "io_traffic",
        format_table(io_rows, title="Paged closures: page faults for the same "
                                    "query load (8-page LRU pool)"),
    )
    full_row, compressed_row = io_rows
    assert compressed_row["pages"] < full_row["pages"]
    assert compressed_row["page_faults"] < full_row["page_faults"]
    assert compressed_row["hit_ratio"] > full_row["hit_ratio"]


def test_paged_query_kernel(benchmark, scale):
    """Timing kernel: paged interval store serving queries through the pool."""
    graph = random_dag(min(300, scale["nodes"]), 3, 1989)
    index = IntervalTCIndex.build(graph, gap=1)
    store = PagedIntervalStore(index, pool=BufferPool(8), page_capacity=128)
    rng = random.Random(9)
    nodes = list(graph.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(500)]
    hits = benchmark(lambda: sum(store.reachable(u, v) for u, v in pairs))
    assert 0 <= hits <= len(pairs)


def test_paged_full_store_kernel(benchmark, scale):
    """Timing kernel: the full-closure layout on the same load."""
    graph = random_dag(min(300, scale["nodes"]), 3, 1989)
    closure = FullTCIndex.build(graph)
    store = PagedSuccessorStore(closure, list(graph.nodes()),
                                pool=BufferPool(8), page_capacity=128)
    rng = random.Random(9)
    nodes = list(graph.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(500)]
    hits = benchmark(lambda: sum(store.reachable(u, v) for u, v in pairs))
    assert 0 <= hits <= len(pairs)
