"""Legacy setup shim.

This environment ships a setuptools without wheel support, so PEP 660
editable installs fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` fall back to the classic ``setup.py develop`` path.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
